// Fever-specific behavior: VC formation, clock bumping, the hg_{f+1}
// invariant under a synchronized start.
#include "pacemaker/fever.h"

#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder fever_options(std::uint32_t n, Duration delta_actual) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker("fever");
  options.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  options.seed(13);
  return options;
}

TEST(FeverTest, GammaDefault) {
  Cluster cluster(fever_options(4, Duration::millis(1)));
  const auto& pm = static_cast<const pacemaker::FeverPacemaker&>(cluster.node(0).pacemaker());
  EXPECT_EQ(pm.gamma(), Duration::millis(80));  // 2(x+1) Delta, x=3, tenure=2
  EXPECT_TRUE(pm.is_initial(0));
  EXPECT_FALSE(pm.is_initial(1));
}

TEST(FeverTest, TenureShrinksGammaTowardXDelta) {
  // Section 3.3 remark: more consecutive views per leader lets Gamma
  // approach (x+1) * Delta from 2(x+1) * Delta.
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const Duration g2 = pacemaker::FeverPacemaker::default_gamma(params, 2);
  const Duration g3 = pacemaker::FeverPacemaker::default_gamma(params, 3);
  const Duration g5 = pacemaker::FeverPacemaker::default_gamma(params, 5);
  const Duration g10 = pacemaker::FeverPacemaker::default_gamma(params, 10);
  EXPECT_EQ(g2, Duration::millis(80));
  EXPECT_LT(g3, g2);
  EXPECT_LT(g5, g3);
  EXPECT_LT(g10, g5);
  EXPECT_GT(g10, params.delta_cap * params.x) << "Gamma stays above x * Delta";
}

class FeverTenureSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FeverTenureSweep, LiveAcrossTenures) {
  ScenarioBuilder options = fever_options(4, Duration::millis(1));
  options.fever(runtime::FeverOptions{GetParam()});
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  EXPECT_GE(cluster.metrics().decisions().size(), 20U) << "tenure " << GetParam();
  // Leader tenure is respected: consecutive views share a leader.
  const auto& pm = static_cast<const pacemaker::FeverPacemaker&>(cluster.node(0).pacemaker());
  for (View v = 0; v < 40; v += GetParam()) {
    for (std::uint32_t k = 1; k < GetParam(); ++k) {
      EXPECT_EQ(pm.leader_of(v), pm.leader_of(v + k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tenures, FeverTenureSweep, ::testing::Values(2U, 3U, 4U, 6U));

TEST(FeverTest, VcsFormForInitialViews) {
  Cluster cluster(fever_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(5));
  EXPECT_GT(cluster.metrics().count_for_type(pacemaker::kVcMsg), 0U);
  EXPECT_GE(cluster.metrics().decisions().size(), 5U);
}

TEST(FeverTest, NoEpochMessagesEver) {
  Cluster cluster(fever_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kEpochViewMsg), 0U)
      << "Fever has no epochs";
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kEcMsg), 0U);
}

TEST(FeverTest, HonestGapStaysBoundedByGamma) {
  // Claim (a) of Section 3.3: hg_{f+1,t} <= Gamma for all t, given the
  // synchronized start. Sample after every simulator event.
  Cluster cluster(fever_options(4, Duration::millis(2)));
  cluster.start();
  const auto tracker = cluster.honest_gap_tracker();
  const auto& pm = static_cast<const pacemaker::FeverPacemaker&>(cluster.node(0).pacemaker());
  const Duration gamma = pm.gamma();
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(5);
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    EXPECT_LE(tracker.gap(cluster.scenario().params.f + 1), gamma)
        << "hg_{f+1} exceeded Gamma at " << cluster.sim().now();
  }
}

TEST(FeverTest, ModelViolationWithFaultsBreaksLivenessForever) {
  // The reason Fever's row of Table 1 says "Bounded Clocks": it *requires*
  // hg_{f+1} <= Gamma at the start. A desynchronized start alone is
  // survivable (see the companion test below: QC-paced clock bumps let
  // stragglers catch up), but desynchronization *combined with f faulty
  // processors* is fatal: only f+1 honest processors ever share a view,
  // one short of the 2f+1 a QC needs, and no mechanism ever closes the
  // gap — Fever produces zero decisions forever. Lumiere under the
  // identical schedule resynchronizes with one heavy epoch exchange and
  // streams decisions. The model column of Table 1 is a real liveness
  // separation, not a formality.
  ScenarioBuilder options = fever_options(7, Duration::millis(1));
  options.join_stagger(Duration::seconds(2));  // >> Gamma
  options.seed(99);
  options.behaviors(adversary::byzantine_set(
      {5, 6}, [](ProcessId) { return std::make_unique<adversary::MuteBehavior>(); }));
  Cluster fever(options);
  fever.run_for(Duration::seconds(60));
  EXPECT_EQ(fever.metrics().decisions().size(), 0U)
      << "Fever decided despite clock-assumption violation plus f faults";

  options.pacemaker("lumiere");
  Cluster lumiere(options);
  lumiere.run_for(Duration::seconds(60));
  EXPECT_GE(lumiere.metrics().decisions().size(), 100U)
      << "Lumiere must recover from the same desynchronized start";
}

TEST(FeverTest, FaultFreeDesyncSelfHealsThroughResponsiveBumps) {
  // Without faults the desynchronized start is NOT fatal to Fever: QCs
  // form at the slowest honest processor's pace, and every QC bumps the
  // stragglers a full Gamma forward for only a few deltas of real time,
  // so the pack catches the most advanced clock and stays caught.
  ScenarioBuilder options = fever_options(7, Duration::millis(1));
  options.join_stagger(Duration::seconds(2));
  options.seed(99);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));
  EXPECT_GE(cluster.metrics().decisions().size(), 1000U);
  EXPECT_LE(cluster.honest_gap_tracker().gap(3),
            static_cast<const pacemaker::FeverPacemaker&>(cluster.node(0).pacemaker()).gamma())
      << "the pack failed to catch the most advanced clock";
}

TEST(FeverTest, ResponsivenessScalesWithDelta) {
  // Decisions should be ~3 delta apart (x = 3), not Gamma apart, when the
  // network is fast.
  Cluster fast(fever_options(4, Duration::micros(200)));
  fast.run_for(Duration::seconds(5));
  const auto gap = fast.metrics().max_decision_gap(TimePoint::origin(), /*warmup=*/4);
  ASSERT_TRUE(gap.has_value());
  EXPECT_LT(*gap, Duration::millis(80)) << "steady-state gaps must beat one Gamma";
}

}  // namespace
}  // namespace lumiere::runtime
