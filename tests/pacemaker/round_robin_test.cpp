// RoundRobin (exponential backoff) pacemaker behavior.
#include "pacemaker/round_robin.h"

#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder rr_options(std::uint32_t n, Duration delta_actual, std::uint64_t seed = 91) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker("round-robin");
  options.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  options.seed(seed);
  return options;
}

TEST(RoundRobinTest, ResponsiveWhenHealthy) {
  Cluster cluster(rr_options(4, Duration::micros(300)));
  cluster.run_for(Duration::seconds(5));
  EXPECT_GE(cluster.metrics().decisions().size(), 100U);
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kWishMsg), 0U)
      << "no timeouts fire on a healthy fast network";
}

TEST(RoundRobinTest, TimeoutsDriveViewChangesPastFaultyLeader) {
  ScenarioBuilder options = rr_options(4, Duration::millis(1));
  options.behaviors(adversary::byzantine_set(
      {2}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
  EXPECT_GT(cluster.metrics().count_for_type(pacemaker::kWishMsg), 0U);
}

TEST(RoundRobinTest, WishAmplificationBringsLaggardsAlong) {
  // Even if timeouts fire at different moments (jittery delays), f+1
  // wishes trigger amplification so everyone joins the view change.
  ScenarioBuilder options = rr_options(7, Duration::millis(1), 93);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100),
                                                      Duration::millis(9)));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::MuteBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(40));
  EXPECT_GE(cluster.metrics().decisions().size(), 5U);
  // All honest nodes keep up (no one stuck more than a couple of views
  // behind).
  EXPECT_GE(cluster.min_honest_view() + 4, cluster.max_honest_view());
}

TEST(RoundRobinTest, EveryViewChangeCostsQuadratic) {
  // The structural weakness: wishes are all-to-all. With a permanently
  // silent leader, each failed view costs Theta(n^2) wish traffic.
  ScenarioBuilder options = rr_options(7, Duration::millis(1), 94);
  options.behaviors(adversary::byzantine_set(
      {0}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));
  const auto wishes = cluster.metrics().count_for_type(pacemaker::kWishMsg);
  const View reached = cluster.max_honest_view();
  const std::int64_t failed_views = reached / 7 + 1;  // p0 leads ~1/7 of views
  // Each failed view: ~6 honest broadcasting wishes to 6 others = 36.
  EXPECT_GE(wishes, static_cast<std::uint64_t>(failed_views) * 20)
      << "all-to-all wish traffic must recur per failed view";
}

}  // namespace
}  // namespace lumiere::runtime
