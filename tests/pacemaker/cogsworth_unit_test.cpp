// Unit-level Cogsworth relay mechanics via direct injection.
#include "pacemaker/cogsworth.h"

#include <gtest/gtest.h>

#include "testutil/pacemaker_harness.h"

namespace lumiere::pacemaker {
namespace {

class CogsworthUnitTest : public ::testing::Test {
 protected:
  CogsworthUnitTest() : harness_(4, /*self=*/0) {
    CogsworthPacemaker::Options options;
    options.view_timeout = Duration::millis(50);
    options.relay_timeout = Duration::millis(20);
    pm_ = std::make_unique<CogsworthPacemaker>(harness_.params(), harness_.self(),
                                               harness_.signer(), harness_.wiring(), options,
                                               std::make_unique<RoundRobinSchedule>(4, 1));
    harness_.attach(pm_.get());
    pm_->start();
    harness_.settle();
  }

  void inject_wish(ProcessId from, View v) {
    pm_->on_message(from, std::make_shared<WishMsg>(
                              v, crypto::threshold_share(harness_.auth().signer_for(from),
                                                         wish_statement(v))));
  }

  void inject_cert(View v, std::uint32_t signers) {
    // Aggregate with threshold == signers so thin (sub-quorum) certs can
    // be crafted; the pacemaker must reject them at verification.
    crypto::QuorumAggregator agg(harness_.auth_view(), wish_statement(v), signers);
    for (ProcessId id = 1; id <= signers; ++id) {
      agg.add(crypto::threshold_share(harness_.auth().signer_for(id), wish_statement(v)));
    }
    pm_->on_message(1, std::make_shared<WishCertMsg>(SyncCert(v, agg.aggregate())));
  }

  testutil::PacemakerHarness harness_;
  std::unique_ptr<CogsworthPacemaker> pm_;
};

TEST_F(CogsworthUnitTest, StartsInViewZero) { EXPECT_EQ(pm_->current_view(), 0); }

TEST_F(CogsworthUnitTest, TimeoutSendsWishToNextLeader) {
  harness_.run_to(TimePoint(Duration::millis(50).ticks()));
  ASSERT_GE(harness_.sent_count(kWishMsg), 1U);
  // The wish targets lead(1) = p1 (round robin).
  for (const auto& sent : harness_.sent()) {
    if (sent.msg->type_id() == kWishMsg) {
      EXPECT_EQ(sent.to, 1U);
      EXPECT_EQ(static_cast<const WishMsg&>(*sent.msg).view(), 1);
      break;
    }
  }
}

TEST_F(CogsworthUnitTest, RelayWalksSuccessiveLeaders) {
  // No response from lead(1): after each relay timeout the wish goes to
  // the next leader in sequence.
  harness_.run_to(TimePoint(Duration::millis(50 + 20 + 20).ticks()));
  std::vector<ProcessId> targets;
  for (const auto& sent : harness_.sent()) {
    if (sent.msg->type_id() == kWishMsg) targets.push_back(sent.to);
  }
  ASSERT_GE(targets.size(), 3U);
  EXPECT_EQ(targets[0], 1U);  // lead(1)
  EXPECT_EQ(targets[1], 2U);  // lead(2) as relay for view 1
  EXPECT_EQ(targets[2], 3U);  // lead(3)
}

TEST_F(CogsworthUnitTest, AggregatesWishesIntoCertificate) {
  // This node acts as a relay: f+1 = 2 distinct wishes for view 1 make it
  // broadcast a certificate.
  inject_wish(1, 1);
  EXPECT_EQ(harness_.sent_count(kWishCertMsg), 0U);
  inject_wish(2, 1);
  harness_.settle();
  EXPECT_EQ(harness_.sent_count(kWishCertMsg), 1U);
}

TEST_F(CogsworthUnitTest, CertificateAdvancesView) {
  inject_cert(5, 2);
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), 5);
}

TEST_F(CogsworthUnitTest, ThinCertificateRejected) {
  inject_cert(5, 1);  // only one signer: below f+1
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), 0);
}

TEST_F(CogsworthUnitTest, DuplicateWishesDoNotCount) {
  inject_wish(1, 1);
  inject_wish(1, 1);
  harness_.settle();
  EXPECT_EQ(harness_.sent_count(kWishCertMsg), 0U)
      << "one Byzantine processor cannot trigger a view change alone";
}

TEST_F(CogsworthUnitTest, QcAdvancesResponsively) {
  harness_.inject_qc(0);
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), 1);
  harness_.inject_qc(1);
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), 2);
}

TEST_F(CogsworthUnitTest, StaleWishesIgnored) {
  inject_cert(5, 2);
  harness_.settle();
  ASSERT_EQ(pm_->current_view(), 5);
  const auto certs_before = harness_.sent_count(kWishCertMsg);
  inject_wish(1, 3);  // view 3 < current view 5
  inject_wish(2, 3);
  harness_.settle();
  EXPECT_EQ(harness_.sent_count(kWishCertMsg), certs_before);
}

}  // namespace
}  // namespace lumiere::pacemaker
