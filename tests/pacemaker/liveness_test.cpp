// All-honest liveness for every pacemaker: decisions must flow under a
// benign network from a synchronized start. This is the basic
// view-synchronization contract (condition (2) of Section 2).
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "runtime/experiment.h"

namespace lumiere::runtime {
namespace {

struct Case {
  std::string kind;
  std::uint32_t n;
};

class PacemakerLiveness : public ::testing::TestWithParam<Case> {};

TEST_P(PacemakerLiveness, DecisionsFlowAllHonest) {
  const Case c = GetParam();
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(c.n, Duration::millis(10)));
  options.pacemaker(c.kind);
  options.core("simple-view");
  options.gst(TimePoint::origin());
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.seed(7);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));

  EXPECT_GE(cluster.metrics().decisions().size(), 10U)
      << c.kind << " n=" << c.n << " produced too few decisions";
  // Views advance together: no honest processor is left behind forever.
  EXPECT_GT(cluster.min_honest_view(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, PacemakerLiveness,
    ::testing::Values(Case{"round-robin", 4}, Case{"cogsworth", 4},
                      Case{"nk20", 4}, Case{"lp22", 4},
                      Case{"fever", 4}, Case{"basic-lumiere", 4},
                      Case{"lumiere", 4}, Case{"round-robin", 7},
                      Case{"cogsworth", 7}, Case{"nk20", 7},
                      Case{"lp22", 7}, Case{"fever", 7},
                      Case{"basic-lumiere", 7}, Case{"lumiere", 7}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.kind;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_n" + std::to_string(info.param.n);
    });

TEST(PacemakerLivenessEdge, LumiereSurvivesJitteryNetwork) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100), Duration::millis(9)));
  options.seed(21);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
}

TEST(PacemakerLivenessEdge, ChainedHotStuffUnderLumiereCommits) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.seed(3);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_GE(cluster.node(id).ledger().size(), 3U) << "node " << id << " committed too little";
  }
  // SMR safety: all ledgers prefix-consistent.
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_TRUE(cluster.node(id).ledger().prefix_consistent_with(cluster.node(0).ledger()));
  }
}

}  // namespace
}  // namespace lumiere::runtime
