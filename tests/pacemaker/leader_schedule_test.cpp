#include "pacemaker/leader_schedule.h"

#include <gtest/gtest.h>

#include <map>

namespace lumiere::pacemaker {
namespace {

TEST(RoundRobinScheduleTest, Tenure1) {
  RoundRobinSchedule s(4, 1);
  EXPECT_EQ(s.leader_of(0), 0U);
  EXPECT_EQ(s.leader_of(1), 1U);
  EXPECT_EQ(s.leader_of(4), 0U);
  EXPECT_EQ(s.leader_of(7), 3U);
}

TEST(RoundRobinScheduleTest, Tenure2PairsViews) {
  RoundRobinSchedule s(4, 2);
  EXPECT_EQ(s.leader_of(0), 0U);
  EXPECT_EQ(s.leader_of(1), 0U);
  EXPECT_EQ(s.leader_of(2), 1U);
  EXPECT_EQ(s.leader_of(3), 1U);
  EXPECT_EQ(s.leader_of(8), 0U);
}

TEST(RoundRobinScheduleTest, NegativeViewsSafe) {
  RoundRobinSchedule s(4, 2);
  EXPECT_EQ(s.leader_of(-1), 0U);
}

TEST(SeededPermutationScheduleTest, IsPermutationPerWindow) {
  SeededPermutationSchedule s(7, 42, 1);
  std::map<ProcessId, int> counts;
  for (View v = 0; v < 7; ++v) ++counts[s.leader_of(v)];
  EXPECT_EQ(counts.size(), 7U) << "each process leads exactly once per window";
}

TEST(SeededPermutationScheduleTest, DeterministicInSeed) {
  SeededPermutationSchedule a(7, 42, 2);
  SeededPermutationSchedule b(7, 42, 2);
  SeededPermutationSchedule c(7, 43, 2);
  bool any_diff = false;
  for (View v = 0; v < 100; ++v) {
    EXPECT_EQ(a.leader_of(v), b.leader_of(v));
    any_diff |= a.leader_of(v) != c.leader_of(v);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SeededPermutationScheduleTest, TenureGroupsConsecutiveViews) {
  SeededPermutationSchedule s(5, 9, 2);
  for (View v = 0; v < 40; v += 2) {
    EXPECT_EQ(s.leader_of(v), s.leader_of(v + 1)) << "leader pairs share a tenure";
  }
}

TEST(SeededPermutationScheduleTest, WindowsDiffer) {
  SeededPermutationSchedule s(16, 5, 1);
  bool differs = false;
  for (View v = 0; v < 16; ++v) {
    if (s.leader_of(v) != s.leader_of(v + 16)) differs = true;
  }
  EXPECT_TRUE(differs) << "different windows should not repeat the permutation";
}

}  // namespace
}  // namespace lumiere::pacemaker
