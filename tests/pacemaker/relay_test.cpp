// Cogsworth / NK20 relay mechanics under faulty leaders.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder relay_options(std::string kind, std::uint32_t n) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker(kind);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.seed(17);
  return options;
}

TEST(RelayTest, CogsworthAdvancesPastSilentLeader) {
  ScenarioBuilder options = relay_options("cogsworth", 4);
  options.behaviors(adversary::byzantine_set(
      {0}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  // p0 leads views 0, 4, 8, ... — those fail; wishes relay past them.
  EXPECT_GE(cluster.metrics().decisions().size(), 6U);
  EXPECT_GT(cluster.metrics().count_for_type(pacemaker::kWishMsg), 0U);
  EXPECT_GT(cluster.metrics().count_for_type(pacemaker::kWishCertMsg), 0U);
}

TEST(RelayTest, Nk20AdvancesPastSilentLeader) {
  ScenarioBuilder options = relay_options("nk20", 4);
  options.behaviors(adversary::byzantine_set(
      {0}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  EXPECT_GE(cluster.metrics().decisions().size(), 6U);
}

TEST(RelayTest, NoWishTrafficWhenAllHonestAndFast) {
  // With honest leaders and a fast network, views advance on QCs before
  // any timer fires: the relay machinery should stay quiet.
  ScenarioBuilder options = relay_options("cogsworth", 4);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(200)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kWishMsg), 0U);
  EXPECT_GE(cluster.metrics().decisions().size(), 20U);
}

TEST(RelayTest, RelayCostGrowsWithConsecutiveFaultyRelays) {
  // Byzantine processes placed to be both the faulty leader and the next
  // relay force extra relay hops; wish traffic should exceed the
  // single-fault case.
  ScenarioBuilder one_fault = relay_options("cogsworth", 10);
  one_fault.behaviors(adversary::byzantine_set(
      {0}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster a(one_fault);
  a.run_for(Duration::seconds(20));

  ScenarioBuilder three_faults = relay_options("cogsworth", 10);
  three_faults.behaviors(adversary::byzantine_set(
      {0, 1, 2}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster b(three_faults);
  b.run_for(Duration::seconds(20));

  const double wishes_per_decision_a =
      static_cast<double>(a.metrics().count_for_type(pacemaker::kWishMsg)) /
      static_cast<double>(std::max<std::size_t>(1, a.metrics().decisions().size()));
  const double wishes_per_decision_b =
      static_cast<double>(b.metrics().count_for_type(pacemaker::kWishMsg)) /
      static_cast<double>(std::max<std::size_t>(1, b.metrics().decisions().size()));
  EXPECT_GT(wishes_per_decision_b, wishes_per_decision_a)
      << "f_a = 3 consecutive faulty relays must cost more than f_a = 1";
}

}  // namespace
}  // namespace lumiere::runtime
