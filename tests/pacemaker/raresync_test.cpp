// RareSync: quadratic-optimal epoch synchronization *without*
// responsiveness — every view costs Gamma even on a fast network.
#include "pacemaker/raresync.h"

#include <gtest/gtest.h>

#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder raresync_options(std::uint32_t n, Duration delta_actual) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker("raresync");
  options.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  options.seed(111);
  return options;
}

TEST(RareSyncTest, LiveAllHonest) {
  Cluster cluster(raresync_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(20));
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
}

TEST(RareSyncTest, NotResponsive) {
  // Decisions are Gamma-paced no matter how fast the network is: the
  // defining difference from LP22 (which is responsive within epochs).
  Cluster cluster(raresync_options(4, Duration::micros(200)));
  cluster.run_for(Duration::seconds(20));
  const auto& decisions = cluster.metrics().decisions();
  ASSERT_GE(decisions.size(), 10U);
  // No two consecutive decisions closer than ~Gamma (40ms) apart.
  for (std::size_t i = 6; i < decisions.size(); ++i) {
    EXPECT_GE(decisions[i].at - decisions[i - 1].at, Duration::millis(35))
        << "RareSync must not have a responsive fast path";
  }
}

TEST(RareSyncTest, EveryEpochPaysHeavySync) {
  Cluster cluster(raresync_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(20));
  const auto epoch_msgs = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  const View reached = cluster.max_honest_view();
  EXPECT_GE(reached, 4);
  EXPECT_GT(epoch_msgs, static_cast<std::uint64_t>(reached / 2) * 3)
      << "heavy synchronization every f+1 = 2 views";
}

TEST(RareSyncTest, QcsDoNotAdvanceViews) {
  // Inject nothing: just compare view progress against wall clock — the
  // views track Gamma pacing exactly (after the initial EC round).
  Cluster cluster(raresync_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(10));
  const View reached = cluster.max_honest_view();
  // 10s / 40ms = 250 view budget; heavy syncs cost extra round trips, so
  // strictly fewer; but far above 0 and far below LP22-with-fast-QCs.
  EXPECT_GT(reached, 100);
  EXPECT_LE(reached, 250);
}

TEST(RareSyncTest, SurvivesFullFaultBudget) {
  ScenarioBuilder options = raresync_options(7, Duration::millis(1));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::MuteBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(40));
  EXPECT_GE(cluster.metrics().decisions().size(), 5U);
}

}  // namespace
}  // namespace lumiere::runtime
