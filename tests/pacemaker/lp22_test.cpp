// LP22-specific behavior: epoch structure, heavy synchronization, and the
// two weaknesses the paper identifies (no clock bumps; eternal epoch
// syncs).
#include "pacemaker/lp22.h"

#include <gtest/gtest.h>

#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder lp22_options(std::uint32_t n, Duration delta_actual) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker("lp22");
  options.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  options.seed(5);
  return options;
}

TEST(Lp22Test, EpochMath) {
  // Direct checks of the f+1-view epoch layout on a live pacemaker.
  ScenarioBuilder options = lp22_options(7, Duration::millis(1));
  Cluster cluster(options);
  const auto& pm = static_cast<const pacemaker::Lp22Pacemaker&>(cluster.node(0).pacemaker());
  EXPECT_EQ(pm.epoch_first_view(0), 0);
  EXPECT_EQ(pm.epoch_first_view(2), 6);  // f+1 = 3 views per epoch
  EXPECT_TRUE(pm.is_epoch_view(0));
  EXPECT_TRUE(pm.is_epoch_view(3));
  EXPECT_FALSE(pm.is_epoch_view(4));
  EXPECT_EQ(pm.epoch_of(5), 1);
  EXPECT_EQ(pm.gamma(), Duration::millis(40));  // (x+1) * Delta with x=3
}

TEST(Lp22Test, EveryEpochPaysHeavySync) {
  ScenarioBuilder options = lp22_options(4, Duration::millis(1));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));
  const auto epoch_msgs = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  const auto ecs = cluster.metrics().count_for_type(pacemaker::kEcMsg);
  // Heavy synchronization happens at the start of *every* epoch forever —
  // issue (ii) of Section 1.
  EXPECT_GT(epoch_msgs, 0U);
  EXPECT_GT(ecs, 0U);
  const View reached = cluster.max_honest_view();
  const View epochs_crossed = reached / 2;  // f+1 = 2 views per epoch
  // Each honest processor broadcasts one epoch message per epoch: at
  // least (n-1) network messages per processor per epoch.
  EXPECT_GE(epoch_msgs, static_cast<std::uint64_t>(epochs_crossed) * 3 * 3 / 2)
      << "epoch-view traffic should recur every epoch";
}

TEST(Lp22Test, QcEntryIsResponsiveWithinEpoch) {
  // With a fast network, decisions inside an epoch come at network speed
  // (entering on QCs), far faster than Gamma pacing.
  ScenarioBuilder options = lp22_options(4, Duration::micros(100));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(5));
  const auto& decisions = cluster.metrics().decisions();
  ASSERT_GE(decisions.size(), 3U);
  // Find two decisions in consecutive views within one epoch and check
  // their spacing is ~3 message delays, not Gamma = 40ms.
  bool found_fast_pair = false;
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    if (decisions[i].view == decisions[i - 1].view + 1 && decisions[i].view % 2 != 0) {
      if (decisions[i].at - decisions[i - 1].at <= Duration::millis(1)) found_fast_pair = true;
    }
  }
  EXPECT_TRUE(found_fast_pair) << "within-epoch progress should be responsive";
}

TEST(Lp22Test, ClocksNeverBumpOnQc) {
  // The defining LP22 weakness: local clocks advance only in real time
  // (plus EC resets), so after a burst of fast QCs the *view* races ahead
  // of the clock — there must be instants where the current view's clock
  // time c_v exceeds the clock reading (a bumping protocol would have
  // raised the clock to c_v on entry).
  ScenarioBuilder options = lp22_options(7, Duration::micros(100));
  Cluster cluster(options);
  cluster.start();
  const auto& node = cluster.node(0);
  const auto& pm = static_cast<const pacemaker::Lp22Pacemaker&>(node.pacemaker());
  bool lag_observed = false;
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(5);
  while (!cluster.sim().idle() && cluster.sim().now() < deadline && !lag_observed) {
    cluster.sim().step();
    const View v = node.current_view();
    if (v > 0 && !node.local_clock().paused() &&
        node.local_clock().reading() < pm.view_time(v)) {
      lag_observed = true;
    }
  }
  EXPECT_TRUE(lag_observed) << "QC-early entries must leave the clock behind c_v";
}

}  // namespace
}  // namespace lumiere::runtime
