#include "pacemaker/certificates.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"
#include "pacemaker/messages.h"

namespace lumiere::pacemaker {
namespace {

class CertificatesTest : public ::testing::Test {
 protected:
  SyncCert make_cert(View v, crypto::Digest (*stmt)(View), std::uint32_t m) {
    crypto::QuorumAggregator agg(auth(), stmt(v), m);
    for (ProcessId id = 0; id < m; ++id) {
      agg.add(crypto::threshold_share(auth_->signer_for(id), stmt(v)));
    }
    return SyncCert(v, agg.aggregate());
  }

  [[nodiscard]] crypto::AuthView auth() const { return crypto::AuthView(auth_.get()); }

  // n = 7, f = 2
  std::unique_ptr<crypto::Authenticator> auth_ =
      crypto::make_authenticator(crypto::kDefaultScheme, 7, 11);
};

TEST_F(CertificatesTest, StatementsAreDomainSeparated) {
  // The same view yields different statements per certificate family, so
  // a view message cannot be replayed as an epoch-view message or a wish.
  EXPECT_NE(view_msg_statement(5), epoch_msg_statement(5));
  EXPECT_NE(view_msg_statement(5), wish_statement(5));
  EXPECT_NE(epoch_msg_statement(5), wish_statement(5));
  EXPECT_NE(view_msg_statement(5), view_msg_statement(6));
}

TEST_F(CertificatesTest, VcVerifies) {
  const SyncCert vc = make_cert(4, &view_msg_statement, 3);  // f+1 = 3
  EXPECT_TRUE(vc.verify(auth(), 3, &view_msg_statement));
  EXPECT_FALSE(vc.verify(auth(), 5, &view_msg_statement)) << "threshold enforced";
  EXPECT_FALSE(vc.verify(auth(), 3, &epoch_msg_statement)) << "wrong statement family";
}

TEST_F(CertificatesTest, EcNeedsQuorum) {
  const SyncCert ec = make_cert(10, &epoch_msg_statement, 5);  // 2f+1 = 5
  EXPECT_TRUE(ec.verify(auth(), 5, &epoch_msg_statement));
  const SyncCert thin = make_cert(10, &epoch_msg_statement, 3);
  EXPECT_FALSE(thin.verify(auth(), 5, &epoch_msg_statement))
      << "f Byzantine + f honest cannot fake an EC";
}

TEST_F(CertificatesTest, FByzantineCannotFormTc) {
  // f = 2 colluding signers cannot reach the f+1 = 3 TC threshold.
  crypto::QuorumAggregator agg(auth(), epoch_msg_statement(20), 3);
  agg.add(crypto::threshold_share(auth_->signer_for(0), epoch_msg_statement(20)));
  agg.add(crypto::threshold_share(auth_->signer_for(1), epoch_msg_statement(20)));
  // Replaying one of their shares does not help.
  EXPECT_FALSE(agg.add(crypto::threshold_share(auth_->signer_for(1), epoch_msg_statement(20))));
  EXPECT_FALSE(agg.complete());
}

TEST_F(CertificatesTest, SerializeRoundTrip) {
  const SyncCert vc = make_cert(4, &view_msg_statement, 3);
  ser::Writer w;
  vc.serialize(w);
  ser::Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  const auto out = SyncCert::deserialize(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, vc);
}

}  // namespace
}  // namespace lumiere::pacemaker
