// Adversarial bytes on the wire: a TCP listener on a real network will
// receive connections from things that are not honest lumiere nodes.
// Garbage frames, oversized length prefixes, slow trickles and abrupt
// disconnects must never crash the endpoint or stop legitimate traffic.
#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/certificates.h"
#include "pacemaker/messages.h"
#include "transport/tcp_transport.h"

namespace lumiere::transport {
namespace {

MessageCodec full_codec() {
  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  return codec;
}

/// Connects a raw client socket to 127.0.0.1:port; returns fd or -1.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

TEST(TcpGarbageTest, RandomBytesNeverCrashAndLegitTrafficFlows) {
  constexpr std::uint16_t kBase = 26100;
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  int delivered = 0;
  for (ProcessId id = 0; id < 2; ++id) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        id, 2, kBase, full_codec(),
        [&delivered](ProcessId, const MessagePtr&) { ++delivered; }));
  }

  // Several hostile clients spray random bytes at endpoint 0's listener
  // (pumping between connects, as a live node constantly would).
  Rng rng(0xBAD);
  std::vector<int> hostiles;
  for (int k = 0; k < 4; ++k) {
    const int fd = raw_connect(kBase);
    ASSERT_GE(fd, 0);
    hostiles.push_back(fd);
    std::vector<std::uint8_t> junk(64 + rng.next_below(400));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    write_all(fd, junk);
    for (auto& ep : eps) ep->poll_once(1);
  }
  // One hostile client announces an absurd frame length and goes quiet;
  // another disconnects mid-"frame".
  {
    const int fd = raw_connect(kBase);
    ASSERT_GE(fd, 0);
    write_all(fd, {0xFF, 0xFF, 0xFF, 0x7F, 0x00, 0x00, 0x00, 0x00});
    hostiles.push_back(fd);
    const int fd2 = raw_connect(kBase);
    ASSERT_GE(fd2, 0);
    write_all(fd2, {0x10, 0x00});
    ::close(fd2);
  }

  for (int round = 0; round < 30; ++round) {
    for (auto& ep : eps) ep->poll_once(2);
  }

  // Legitimate traffic still flows both ways.
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 2, 1);
  const pacemaker::ViewMsg msg(
      3, crypto::threshold_share(auth->signer_for(1), pacemaker::view_msg_statement(3)));
  eps[1]->send(0, msg);
  eps[0]->send(1, msg);
  for (int round = 0; round < 50 && delivered < 2; ++round) {
    for (auto& ep : eps) ep->poll_once(2);
  }
  EXPECT_GE(delivered, 2) << "garbage connections starved legitimate traffic";

  for (const int fd : hostiles) ::close(fd);
}

TEST(TcpGarbageTest, TrickledValidFrameStillDecodes) {
  // A legitimate frame delivered one byte at a time must reassemble.
  constexpr std::uint16_t kBase = 26110;
  int got_view = -1;
  TcpEndpoint server(0, 2, kBase, full_codec(),
                     [&got_view](ProcessId, const MessagePtr& msg) {
                       got_view = static_cast<int>(
                           static_cast<const pacemaker::ViewMsg&>(*msg).view());
                     });
  // Build the exact frame a peer would send: [len][sender][payload].
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 2, 1);
  const pacemaker::ViewMsg msg(
      5, crypto::threshold_share(auth->signer_for(1), pacemaker::view_msg_statement(5)));
  const auto payload = MessageCodec::encode(msg);
  std::vector<std::uint8_t> frame;
  auto put_u32 = [&frame](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u32(static_cast<std::uint32_t>(payload.size()));
  put_u32(1);  // sender id
  frame.insert(frame.end(), payload.begin(), payload.end());

  const int fd = raw_connect(kBase);
  ASSERT_GE(fd, 0);
  for (const std::uint8_t byte : frame) {
    write_all(fd, {byte});
    server.poll_once(0);
  }
  for (int round = 0; round < 20 && got_view < 0; ++round) server.poll_once(2);
  EXPECT_EQ(got_view, 5);
  ::close(fd);
}

}  // namespace
}  // namespace lumiere::transport
