// Reconnect backoff: the pure policy (transport/backoff.h) and the
// endpoint behavior it gates — a peer that dies and later rebinds its
// port is rediscovered and traffic resumes (the soak cluster's
// crash-recovery transport precondition).
#include "transport/backoff.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "crypto/authenticator.h"
#include "pacemaker/messages.h"
#include "transport/tcp_transport.h"

namespace lumiere::transport {
namespace {

TEST(ReconnectBackoffTest, DoublesUntilCapWithBoundedJitter) {
  const BackoffPolicy policy{Duration::millis(2), Duration::millis(200)};
  ReconnectBackoff backoff(policy, /*jitter_seed=*/7);
  for (int k = 1; k <= 12; ++k) {
    const std::int64_t pre_jitter =
        std::min<std::int64_t>(policy.base.ticks() << (k - 1), policy.cap.ticks());
    const Duration delay = backoff.on_failure();
    EXPECT_GE(delay.ticks(), pre_jitter) << "failure " << k;
    EXPECT_LT(delay.ticks(), pre_jitter + pre_jitter / 4 + 1) << "failure " << k;
  }
  EXPECT_EQ(backoff.failures(), 12U);
}

TEST(ReconnectBackoffTest, CapHoldsForever) {
  ReconnectBackoff backoff({Duration::millis(2), Duration::millis(200)}, 11);
  for (int k = 0; k < 80; ++k) {
    const Duration delay = backoff.on_failure();
    EXPECT_LE(delay.ticks(), Duration::millis(250).ticks());  // cap + cap/4
  }
}

TEST(ReconnectBackoffTest, SuccessRestartsTheSchedule) {
  ReconnectBackoff backoff({Duration::millis(2), Duration::millis(200)}, 3);
  for (int k = 0; k < 6; ++k) (void)backoff.on_failure();
  backoff.on_success();
  EXPECT_EQ(backoff.failures(), 0U);
  const Duration first = backoff.on_failure();
  EXPECT_GE(first.ticks(), Duration::millis(2).ticks());
  EXPECT_LT(first.ticks(), Duration::millis(2).ticks() + Duration::millis(2).ticks() / 4 + 1);
}

TEST(ReconnectBackoffTest, IdenticalSeedsDrawIdenticalDelays) {
  ReconnectBackoff a({Duration::millis(2), Duration::millis(200)}, 42);
  ReconnectBackoff b({Duration::millis(2), Duration::millis(200)}, 42);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(a.on_failure().ticks(), b.on_failure().ticks()) << "draw " << k;
  }
}

TEST(ReconnectBackoffTest, ZeroBaseDisablesGating) {
  ReconnectBackoff backoff({Duration::zero(), Duration::millis(200)}, 1);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(backoff.on_failure().ticks(), 0);
  }
}

// ---------------------------------------------------------------- endpoint

MessageCodec pacemaker_codec() {
  MessageCodec codec;
  pacemaker::register_pacemaker_messages(codec);
  return codec;
}

pacemaker::ViewMsg view_msg(const crypto::Authenticator& auth, ProcessId from, View v) {
  return pacemaker::ViewMsg(
      v, crypto::threshold_share(auth.signer_for(from), pacemaker::view_msg_statement(v)));
}

// A peer endpoint dies (port released), the survivor keeps sending —
// gated by backoff, not hammering — and once the peer rebinds, frames
// flow again. This is exactly what a soak replica sees across a peer's
// kill -9 + restart.
TEST(ReconnectBackoffTest, EndpointRecoversAfterPeerRestart) {
  constexpr std::uint16_t kBase = 23950;
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 2, 1);
  std::vector<View> received;

  TcpEndpoint survivor(0, 2, kBase, pacemaker_codec(), [](ProcessId, const MessagePtr&) {});
  survivor.set_reconnect_backoff({Duration::millis(1), Duration::millis(50)}, 99);

  auto make_peer = [&] {
    return std::make_unique<TcpEndpoint>(
        1, 2, kBase, pacemaker_codec(), [&received](ProcessId, const MessagePtr& msg) {
          received.push_back(static_cast<const pacemaker::ViewMsg&>(*msg).view());
        });
  };

  // First incarnation: delivery works.
  auto peer = make_peer();
  survivor.send(1, view_msg(*auth, 0, 1));
  for (int i = 0; i < 40 && received.empty(); ++i) {
    survivor.poll_once(5);
    peer->poll_once(5);
  }
  ASSERT_EQ(received.size(), 1U);

  // Peer dies. Sends toward it fail; the backoff gate records failures
  // instead of connect()-spamming on every single send.
  peer.reset();
  for (int i = 0; i < 30; ++i) {
    survivor.send(1, view_msg(*auth, 0, 100 + i));
    survivor.poll_once(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(survivor.connect_failures(1), 0U);
  EXPECT_LT(survivor.connect_failures(1), 30U) << "every send retried connect(): no gating";

  // Peer rebinds the same port; within the capped backoff window the
  // survivor reconnects and delivery resumes.
  peer = make_peer();
  received.clear();
  for (int i = 0; i < 200 && received.empty(); ++i) {
    survivor.send(1, view_msg(*auth, 0, 1000 + i));
    survivor.poll_once(2);
    peer->poll_once(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_FALSE(received.empty()) << "no frame arrived after the peer rebound its port";
  EXPECT_EQ(survivor.connect_failures(1), 0U) << "success must reset the failure count";
}

}  // namespace
}  // namespace lumiere::transport
