#include "transport/tcp_transport.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"

namespace lumiere::transport {
namespace {

MessageCodec full_codec() {
  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  return codec;
}

std::uint16_t pick_base_port(std::uint16_t offset) {
  // Spread across test cases to avoid rebind races in the same process.
  return static_cast<std::uint16_t>(23100 + offset);
}

void pump_all(std::vector<std::unique_ptr<TcpEndpoint>>& endpoints, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    for (auto& ep : endpoints) ep->poll_once(5);
  }
}

TEST(TcpTransportTest, PointToPointDelivery) {
  const auto base = pick_base_port(0);
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  std::map<ProcessId, std::vector<View>> received;
  for (ProcessId id = 0; id < 2; ++id) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        id, 2, base, full_codec(), [&received, id](ProcessId, const MessagePtr& msg) {
          received[id].push_back(static_cast<const pacemaker::ViewMsg&>(*msg).view());
        }));
  }
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 2, 1);
  const pacemaker::ViewMsg msg(
      7, crypto::threshold_share(auth->signer_for(0), pacemaker::view_msg_statement(7)));
  eps[0]->send(1, msg);
  pump_all(eps, 20);
  ASSERT_EQ(received[1].size(), 1U);
  EXPECT_EQ(received[1][0], 7);
}

TEST(TcpTransportTest, BroadcastIncludesSelf) {
  const auto base = pick_base_port(8);
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  std::map<ProcessId, int> counts;
  for (ProcessId id = 0; id < 3; ++id) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        id, 3, base, full_codec(),
        [&counts, id](ProcessId, const MessagePtr&) { ++counts[id]; }));
  }
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 3, 1);
  const pacemaker::EpochViewMsg msg(
      0, crypto::threshold_share(auth->signer_for(2), pacemaker::epoch_msg_statement(0)));
  eps[2]->broadcast(msg);
  pump_all(eps, 20);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1) << "self-delivery per the paper's convention";
}

TEST(TcpTransportTest, LargeMessageSurvivesFraming) {
  const auto base = pick_base_port(16);
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  std::vector<std::size_t> payload_sizes;
  for (ProcessId id = 0; id < 2; ++id) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        id, 2, base, full_codec(), [&payload_sizes, id](ProcessId, const MessagePtr& msg) {
          if (id == 1) {
            payload_sizes.push_back(
                static_cast<const consensus::ProposalMsg&>(*msg).block().payload().size());
          }
        }));
  }
  const auto genesis = consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  const std::vector<std::uint8_t> big(50'000, 0x5A);
  const consensus::ProposalMsg msg(
      consensus::Block(consensus::Block::genesis().hash(), 1, big, genesis));
  eps[0]->send(1, msg);
  pump_all(eps, 100);
  ASSERT_EQ(payload_sizes.size(), 1U);
  EXPECT_EQ(payload_sizes[0], 50'000U);
}

TEST(TcpTransportTest, ManyFramesInOrder) {
  const auto base = pick_base_port(24);
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  std::vector<View> received;
  for (ProcessId id = 0; id < 2; ++id) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        id, 2, base, full_codec(), [&received, id](ProcessId, const MessagePtr& msg) {
          if (id == 1) received.push_back(static_cast<const pacemaker::ViewMsg&>(*msg).view());
        }));
  }
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 2, 1);
  for (View v = 0; v < 200; ++v) {
    eps[0]->send(1, pacemaker::ViewMsg(
                        v, crypto::threshold_share(auth->signer_for(0),
                                                   pacemaker::view_msg_statement(v))));
  }
  pump_all(eps, 100);
  ASSERT_EQ(received.size(), 200U);
  for (View v = 0; v < 200; ++v) EXPECT_EQ(received[static_cast<std::size_t>(v)], v);
}

}  // namespace
}  // namespace lumiere::transport
