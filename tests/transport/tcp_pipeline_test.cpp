// The staged verification pipeline on the TCP transport, end to end:
// ScenarioBuilder::pipeline() turns on per-node decode+verify worker
// pools, consensus still happens, ledgers still agree, and the fault
// schedule stops/starts the pools with their node. Also the sim-vs-TCP
// metrics parity claims: Cluster::workload_report() and the
// MetricsCollector must tell the same story on both transports.
//
// Wall-clock smoke tests: ports 25640+ (earlier transport tests own
// 25480-25620).
#include <gtest/gtest.h>

#include "crypto/authenticator.h"
#include "runtime/cluster.h"
#include "workload/report.h"
#include "workload/spec.h"

// Wall-clock budgets below assume release-ish codegen. Sanitizer builds
// run the signature arithmetic 5-20x slower, so the crypto-heavy smoke
// test scales its run window to keep the commit assertions meaningful.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define LUMIERE_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define LUMIERE_TEST_SANITIZED 1
#endif
#endif

namespace lumiere::runtime {
namespace {

#ifdef LUMIERE_TEST_SANITIZED
constexpr int kSanitizerHeadroom = 6;
#else
constexpr int kSanitizerHeadroom = 1;
#endif

/// Some registered scheme with real (non-trivial) verification cost —
/// i.e. anything other than the zero-cost sim default. Falls back to the
/// default if the registry only has one scheme.
std::string real_scheme() {
  for (const auto& name : crypto::scheme_names()) {
    if (name != crypto::kDefaultScheme) return name;
  }
  return crypto::kDefaultScheme;
}

workload::WorkloadSpec constant_load() {
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kConstant;
  spec.clients_per_node = 1;
  spec.rate_per_client = 200.0;
  return spec;
}

TEST(TcpPipelineTest, PipelinedClusterCommitsUnderRealSignatures) {
  // The headline configuration: a real signature scheme whose checks are
  // too slow to leave on the critical thread, with the worker pools
  // taking them. Consensus must still happen and replicas must agree.
  PipelineSpec pipeline;
  pipeline.enabled = true;
  pipeline.workers = 4;
  pipeline.queue_capacity = 256;
  // Δ scales with the sanitizer headroom too: leaving it at the native
  // 10ms under TSan makes every view time out before its quorum's
  // signatures clear the (sanitizer-slowed) checks, so views advance
  // forever without a single commit.
  ScenarioBuilder builder;
  builder.params(
          ProtocolParams::for_n(4, Duration::millis(10 * kSanitizerHeadroom), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(81)
      .auth_scheme(real_scheme())
      .pipeline(pipeline)
      .workload(constant_load())
      .transport_tcp(25640);
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(1200 * kSanitizerHeadroom));  // wall-clock

  std::size_t shortest = SIZE_MAX;
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    EXPECT_GE(cluster.node(id).current_view(), 3)
        << "node " << id << " made no view progress with the pipeline on";
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GT(shortest, 0U) << "no commits with the pipeline on";
  for (std::size_t i = 0; i < shortest; ++i) {
    const auto& reference = cluster.node(0).ledger().entries()[i].hash;
    for (ProcessId id = 1; id < cluster.n(); ++id) {
      EXPECT_EQ(cluster.node(id).ledger().entries()[i].hash, reference)
          << "SMR logs diverged with staged verification at index " << i;
    }
  }
  EXPECT_GT(cluster.workload_report().committed, 0U);

  // Every node's pool actually carried traffic, and the off-thread
  // checks passed (honest cluster: all claims are genuine).
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    const VerifyPipeline* pool = cluster.pipeline(id);
    ASSERT_NE(pool, nullptr) << "pipeline(on) must build a pool per node";
    const auto stats = pool->stats();
    EXPECT_GT(stats.frames_in, 0U) << "node " << id << " never fed its pool";
    EXPECT_GT(stats.frames_out, 0U);
    EXPECT_GT(stats.claims_checked, 0U);
    EXPECT_GT(stats.claims_passed, 0U);
    EXPECT_EQ(stats.decode_failures, 0U) << "honest peers sent garbage?";
  }
}

TEST(TcpPipelineTest, CrashStopsThePoolAndRecoverRestartsIt) {
  // The fault schedule owns the pool lifecycle: a scripted crash joins
  // the crashed node's workers (in-flight frames discarded, like any
  // crashed process's memory) and recovery restarts them; the node then
  // rejoins consensus through its fresh pool.
  PipelineSpec pipeline;
  pipeline.enabled = true;
  pipeline.workers = 2;
  pipeline.queue_capacity = 128;
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .seed(82)
      .auth_scheme(real_scheme())
      .pipeline(pipeline)
      .transport_tcp(25660);
  builder.crash(3, TimePoint(Duration::millis(250).ticks()));
  builder.recover(3, TimePoint(Duration::millis(550).ticks()));
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(1000));  // wall-clock

  // The three always-up nodes — exactly 2f+1 — advanced through the
  // outage, each through its own pool.
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_GE(cluster.node(id).current_view(), 3)
        << "node " << id << " stalled during node 3's outage";
    EXPECT_GT(cluster.pipeline(id)->stats().frames_in, 0U);
  }
  // Node 3's pool survived the stop/start cycle and is running again.
  const VerifyPipeline* revived = cluster.pipeline(3);
  ASSERT_NE(revived, nullptr);
  EXPECT_TRUE(revived->running()) << "recover must restart the worker pool";
  EXPECT_GT(revived->stats().frames_in, 0U) << "node 3 never processed a frame";
}

/// One scenario shape, run on whichever transport the caller picks; the
/// parity tests below compare the two tellings.
Cluster make_measured_cluster(bool tcp, std::uint16_t port, std::uint64_t seed) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(seed)
      .workload(constant_load());
  if (tcp) builder.transport_tcp(port);
  return Cluster(builder);
}

TEST(TcpPipelineTest, MetricsAndWorkloadReportAgreeOnSim) {
  Cluster cluster = make_measured_cluster(/*tcp=*/false, 0, 83);
  cluster.run_for(Duration::seconds(3));  // simulated time
  const workload::Report report = cluster.workload_report();
  ASSERT_GT(report.committed, 0U);
  // Both counters are fed by the same commit hook; on the deterministic
  // simulator they must agree exactly.
  EXPECT_EQ(cluster.metrics().requests_committed(), report.committed);
  EXPECT_TRUE(cluster.metrics().request_latency_percentile(0.5).has_value());
  EXPECT_GT(cluster.metrics().total_honest_msgs(), 0U);
  EXPECT_FALSE(cluster.metrics().decisions().empty());
}

TEST(TcpPipelineTest, MetricsAndWorkloadReportAgreeOnTcp) {
  // The same claims over real sockets: this is the regression test for
  // the old TCP metrics gap, where the collector was sim-wired and a TCP
  // run reported empty windows. Driver threads record concurrently into
  // the sharded collector; queries merge after run_for joins them.
  Cluster cluster = make_measured_cluster(/*tcp=*/true, 25680, 84);
  cluster.run_for(Duration::millis(1200));  // wall-clock
  const workload::Report report = cluster.workload_report();
  ASSERT_GT(report.committed, 0U) << "no requests committed over TCP";
  EXPECT_EQ(cluster.metrics().requests_committed(), report.committed)
      << "TCP runs must feed the collector the same commits the report sees";
  EXPECT_TRUE(cluster.metrics().request_latency_percentile(0.5).has_value());
  EXPECT_GT(cluster.metrics().total_honest_msgs(), 0U)
      << "protocol traffic invisible to metrics over TCP";
  EXPECT_GT(cluster.metrics().consensus_msgs(), 0U);
  EXPECT_FALSE(cluster.metrics().decisions().empty())
      << "no decisions recorded over TCP (the historical gap)";
}

}  // namespace
}  // namespace lumiere::runtime
