// The full protocol stack over real sockets in real time: the same Node
// objects the simulator drives, reaching consensus over localhost TCP
// with wall-clock timers. Complements tcp_transport_test (bytes move)
// with the end-to-end claim (consensus happens).
#include "transport/realtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"
#include "runtime/node.h"

namespace lumiere::transport {
namespace {

MessageCodec full_codec() {
  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  return codec;
}

struct NodeOutcome {
  View final_view = -1;
  std::size_t commits = 0;
  std::vector<crypto::Digest> chain;
};

/// Runs n full nodes over TCP for `wall` milliseconds; returns outcomes.
std::vector<NodeOutcome> run_cluster(const std::string& pacemaker, const std::string& core,
                                     std::uint16_t base_port, int wall_ms) {
  constexpr std::uint32_t kN = 4;
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, kN, 7);
  const ProtocolParams params = ProtocolParams::for_n(kN, Duration::millis(10), /*x=*/4);
  std::vector<NodeOutcome> outcomes(kN);

  // Bind every listener before any node starts the protocol: one-shot
  // bootstrap broadcasts (Lumiere's epoch-view message) must not race a
  // peer's not-yet-bound socket. Real deployments bind before announcing
  // themselves too; runtime::Cluster's TCP mode does the same.
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<TcpTransportAdapter>> transports;
  std::vector<std::unique_ptr<runtime::Node>> nodes;
  for (ProcessId id = 0; id < kN; ++id) {
    sims.push_back(std::make_unique<sim::Simulator>());
    transports.push_back(std::make_unique<TcpTransportAdapter>(id, kN, base_port, full_codec()));
    runtime::NodeConfig config;
    config.protocol.pacemaker = pacemaker;
    config.protocol.core = core;
    config.protocol.shared_seed = 7;
    nodes.push_back(std::make_unique<runtime::Node>(params, id, sims[id].get(),
                                                    transports[id].get(), auth.get(), config,
                                                    runtime::NodeObservers{},
                                                    std::make_unique<adversary::HonestBehavior>()));
  }

  std::vector<std::thread> threads;
  threads.reserve(kN);
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      nodes[id]->start();
      RealtimeDriver driver(sims[id].get(), &transports[id]->endpoint());
      driver.run_for(std::chrono::milliseconds(wall_ms));
      outcomes[id].final_view = nodes[id]->current_view();
      outcomes[id].commits = nodes[id]->ledger().size();
      for (const auto& entry : nodes[id]->ledger().entries()) {
        outcomes[id].chain.push_back(entry.hash);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return outcomes;
}

TEST(RealtimeTest, LumiereHotStuffReachesConsensusOverTcp) {
  const auto outcomes = run_cluster("lumiere", "chained-hotstuff", 25480, 800);
  std::size_t shortest = SIZE_MAX;
  for (const auto& outcome : outcomes) {
    // Localhost latency is far below Delta = 10ms; the thresholds are
    // deliberately loose — wall-clock tests share the machine with the
    // rest of the suite (and sometimes a bench run), and proving
    // consensus-over-TCP needs only a handful of views.
    EXPECT_GE(outcome.final_view, 5);
    EXPECT_GE(outcome.commits, 3U);
    shortest = std::min(shortest, outcome.commits);
  }
  ASSERT_GT(shortest, 0U);
  for (std::size_t i = 0; i < shortest; ++i) {
    for (std::size_t id = 1; id < outcomes.size(); ++id) {
      ASSERT_EQ(outcomes[id].chain[i], outcomes[0].chain[i])
          << "SMR logs diverged over TCP at index " << i;
    }
  }
}

TEST(RealtimeTest, FeverHotStuff2AlsoRunsOverTcp) {
  // A different pacemaker/core pairing through the identical seam —
  // nothing in the realtime path is Lumiere-specific.
  const auto outcomes = run_cluster("fever", "hotstuff-2", 25500, 800);
  for (const auto& outcome : outcomes) {
    EXPECT_GE(outcome.final_view, 5);
    EXPECT_GE(outcome.commits, 3U);
  }
}

TEST(RealtimeTest, DriverKeepsSimulatorInLockstepWithWall) {
  // No sockets needed: the driver must advance the simulator by (roughly)
  // the wall time it was given, so LocalClock readings are real time.
  sim::Simulator sim;
  TcpTransportAdapter transport(0, 1, 25520, full_codec());
  RealtimeDriver driver(&sim, &transport.endpoint());
  driver.run_for(std::chrono::milliseconds(120));
  EXPECT_GE(sim.now().ticks(), Duration::millis(100).ticks());
  // Generous upper bound: a loaded machine can stall one loop iteration.
  EXPECT_LE(sim.now().ticks(), Duration::millis(1000).ticks());
}

TEST(RealtimeTest, ScheduledEventsFireAtWallTime) {
  sim::Simulator sim;
  TcpTransportAdapter transport(0, 1, 25540, full_codec());
  std::vector<std::int64_t> fire_wall_ms;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 1; i <= 3; ++i) {
    sim.schedule_after(Duration::millis(i * 30), [&, i] {
      fire_wall_ms.push_back(std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    });
  }
  RealtimeDriver driver(&sim, &transport.endpoint());
  driver.run_for(std::chrono::milliseconds(150));
  ASSERT_EQ(fire_wall_ms.size(), 3U);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(fire_wall_ms[i], (i + 1) * 30 - 2) << "event " << i << " fired early";
    EXPECT_LE(fire_wall_ms[i], (i + 1) * 30 + 100) << "event " << i << " fired far too late";
  }
}

}  // namespace
}  // namespace lumiere::transport
