// ScenarioBuilder's TCP transport: the same construction API that drives
// the deterministic simulator boots real-socket clusters (one private
// simulator + wall-clock driver thread per node). Smoke-level by design —
// wall-clock runs cannot assert timing shapes, only that the protocol
// stack reaches consensus over real frames.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "workload/report.h"
#include "workload/spec.h"

namespace lumiere::runtime {
namespace {

TEST(TcpScenarioTest, HomogeneousLumiereClusterAdvancesOverTcp) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(71)
      .transport_tcp(25560);
  Cluster cluster(builder);
  EXPECT_EQ(cluster.transport(), TransportKind::kTcp);
  cluster.run_for(Duration::millis(800));  // wall-clock
  std::size_t shortest_chain = SIZE_MAX;
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    EXPECT_GE(cluster.node(id).current_view(), 3)
        << "node " << id << " made no view progress over TCP";
    shortest_chain = std::min(shortest_chain, cluster.node(id).ledger().size());
  }
  ASSERT_GT(shortest_chain, 0U) << "no commits over TCP";
  // Committed prefixes agree (safety holds off-simulator too).
  for (std::size_t i = 0; i < shortest_chain; ++i) {
    const auto& reference = cluster.node(0).ledger().entries()[i].hash;
    for (ProcessId id = 1; id < cluster.n(); ++id) {
      EXPECT_EQ(cluster.node(id).ledger().entries()[i].hash, reference)
          << "SMR logs diverged over TCP at index " << i;
    }
  }
}

TEST(TcpScenarioTest, HeterogeneousClusterSmokesOverTcp) {
  // The heterogeneous shape from tests/integration/heterogeneous_test.cpp
  // at smoke level: n = 4 (f = 1), one round-robin deviant, and the three
  // Lumiere nodes — exactly 2f+1 — must still advance over real sockets.
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
      .pacemaker("lumiere")
      .seed(72)
      .transport_tcp(25580);
  builder.node(3).pacemaker("round-robin");
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(800));  // wall-clock
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_GE(cluster.node(id).current_view(), 3)
        << "Lumiere node " << id << " stalled against the round-robin deviant over TCP";
  }
  EXPECT_EQ(cluster.node(3).protocol().pacemaker, "round-robin");
}

TEST(TcpScenarioTest, ScheduledCrashHasBestEffortTcpAnalogue) {
  // A scripted crash/recover window on the TCP transport: node 3's frames
  // are dropped for the middle of the run, then it rejoins and catches
  // up. Smoke-level — the assertion is only that the cut node fell
  // behind-or-equal and the cluster survived.
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .seed(73)
      .transport_tcp(25600);
  builder.crash(3, TimePoint(Duration::millis(200).ticks()));
  builder.recover(3, TimePoint(Duration::millis(500).ticks()));
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(900));  // wall-clock
  // The three always-connected nodes — exactly 2f+1 — kept advancing.
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_GE(cluster.node(id).current_view(), 3)
        << "node " << id << " stalled while node 3 was scripted away";
  }
  EXPECT_LE(cluster.node(3).current_view(), cluster.node(0).current_view() + 1)
      << "a node cut for a third of the run cannot lead the cluster";
}

TEST(TcpScenarioTest, WorkloadEngineDrivesRealSockets) {
  // The workload engine over TCP: client drivers run on each node's
  // private wall-clock-paced simulator, submissions/commits stay on the
  // node's own thread, and the merged report is read after run_for joins
  // the threads. Smoke-level: requests flow end to end and none of the
  // admitted ones are double-committed.
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kConstant;
  spec.clients_per_node = 1;
  spec.rate_per_client = 200.0;
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(74)
      .workload(spec)
      .transport_tcp(25620);
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(1200));  // wall-clock

  const workload::Report report = cluster.workload_report();
  EXPECT_GT(report.submitted, 100U) << "drivers did not run against the wall clock";
  EXPECT_GT(report.committed, 0U) << "no request completed over TCP";
  EXPECT_EQ(report.commit_misses, 0U) << "a request committed twice";
  EXPECT_LE(report.committed, report.admitted);
  EXPECT_TRUE(report.latency_percentile(0.5).has_value());
  // Committed payloads agree across replicas (the SMR guarantee carries
  // the workload): shortest common prefix, hash-checked.
  std::size_t shortest = SIZE_MAX;
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GT(shortest, 0U);
  for (std::size_t i = 0; i < shortest; ++i) {
    const auto& reference = cluster.node(0).ledger().entries()[i].hash;
    for (ProcessId id = 1; id < cluster.n(); ++id) {
      EXPECT_EQ(cluster.node(id).ledger().entries()[i].hash, reference);
    }
  }
}

}  // namespace
}  // namespace lumiere::runtime
