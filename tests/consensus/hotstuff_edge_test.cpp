// Chained HotStuff edge cases beyond the happy path.
#include <gtest/gtest.h>

#include "consensus/chained_hotstuff.h"
#include "testutil/core_harness.h"

namespace lumiere::consensus {
namespace {

using Harness = testutil::CoreHarness<ChainedHotStuff>;

TEST(HotStuffEdgeTest, DuplicateVotesCannotInflateQuorum) {
  Harness h(4);
  // Run view 0 normally; then replay node 1's vote at the leader — the
  // aggregator must reject the duplicate share, so nothing changes.
  h.enter_view_all(0);
  ASSERT_TRUE(h.all_saw_qc(0));
  const std::size_t qcs_before = h.node(0).qcs_formed.size();
  // Craft a duplicate vote from node 1 for view 0's block.
  // (The aggregator was already consumed; this must be a clean no-op.)
  h.enter_view_all(1);
  EXPECT_EQ(h.node(0).qcs_formed.size(), qcs_before);
}

TEST(HotStuffEdgeTest, LateProposalForPastViewIgnored) {
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(1);
  h.enter_view_all(2);
  // A proposal for view 0 arriving now must not trigger votes.
  const QuorumCert genesis = QuorumCert::genesis(Block::genesis().hash());
  auto late = std::make_shared<ProposalMsg>(Block(Block::genesis().hash(), 0, {9}, genesis));
  h.network().send(0, 1, late);
  h.settle();
  EXPECT_EQ(h.core(1).current_view(), 2);
}

TEST(HotStuffEdgeTest, HighQcAdoptedFromNewViewMessages) {
  Harness h(4);
  for (View v = 0; v <= 2; ++v) h.enter_view_all(v);
  // All cores know the QC for view 2 (or at least view 1) by now; a new
  // leader (view 3 -> p3) must propose extending the highest known QC.
  h.enter_view_all(3);
  EXPECT_GE(h.core(3).high_qc().view(), 2);
  h.enter_view_all(4);
  // Proposals keep chaining: commits advance.
  EXPECT_GE(h.core(0).last_committed_view(), 1);
}

TEST(HotStuffEdgeTest, JustifyQcInsideProposalPropagatesState) {
  Harness h(4);
  h.enter_view_all(0);
  // Node 3 misses the QC broadcast for view 0 (we can't drop messages in
  // this harness, so emulate: a fresh harness node entering late still
  // learns the QC from the *proposal justify* of view 1).
  h.enter_view_all(1);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_GE(h.core(id).high_qc().view(), 0);
  }
}

TEST(HotStuffEdgeTest, NoCommitWithoutConsecutiveViews) {
  Harness h(4);
  // Alternate view entries so no three *consecutive* views ever form:
  // 0, 2, 4, 6 — every justify gap is 2.
  for (View v = 0; v <= 8; v += 2) h.enter_view_all(v);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_TRUE(h.node(id).committed.empty())
        << "3-chain commit requires consecutive views";
  }
}

TEST(HotStuffEdgeTest, LocksAdvanceMonotonically) {
  Harness h(4);
  View last_lock = -1;
  for (View v = 0; v <= 8; ++v) {
    h.enter_view_all(v);
    EXPECT_GE(h.core(2).locked_qc().view(), last_lock);
    last_lock = h.core(2).locked_qc().view();
  }
  EXPECT_GT(last_lock, 0);
}

}  // namespace
}  // namespace lumiere::consensus
