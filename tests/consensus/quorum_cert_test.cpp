#include "consensus/quorum_cert.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

namespace lumiere::consensus {
namespace {

class QuorumCertTest : public ::testing::Test {
 protected:
  QuorumCert make_qc(View view, const crypto::Digest& block_hash, std::uint32_t votes) {
    crypto::QuorumAggregator agg(auth(), QuorumCert::statement(view, block_hash),
                                 params_.quorum());
    for (ProcessId id = 0; id < votes; ++id) {
      agg.add(crypto::threshold_share(auth_->signer_for(id),
                                      QuorumCert::statement(view, block_hash)));
    }
    return QuorumCert(view, block_hash, agg.aggregate());
  }

  [[nodiscard]] crypto::AuthView auth() const { return crypto::AuthView(auth_.get()); }

  ProtocolParams params_ = ProtocolParams::for_n(7, Duration::millis(10));
  std::unique_ptr<crypto::Authenticator> auth_ =
      crypto::make_authenticator(crypto::kDefaultScheme, 7, 42);
};

TEST_F(QuorumCertTest, ValidQcVerifies) {
  const crypto::Digest h = crypto::Sha256::hash("block");
  const QuorumCert qc = make_qc(3, h, params_.quorum());
  EXPECT_TRUE(qc.verify(auth(), params_));
  EXPECT_EQ(qc.view(), 3);
  EXPECT_FALSE(qc.is_genesis());
}

TEST_F(QuorumCertTest, StatementBindsViewAndBlock) {
  const crypto::Digest h1 = crypto::Sha256::hash("a");
  const crypto::Digest h2 = crypto::Sha256::hash("b");
  EXPECT_NE(QuorumCert::statement(1, h1), QuorumCert::statement(2, h1));
  EXPECT_NE(QuorumCert::statement(1, h1), QuorumCert::statement(1, h2));
}

TEST_F(QuorumCertTest, MismatchedStatementRejected) {
  const crypto::Digest h = crypto::Sha256::hash("block");
  QuorumCert qc = make_qc(3, h, params_.quorum());
  // Tamper: claim it certifies a different view.
  const QuorumCert tampered(4, h, qc.sig());
  EXPECT_FALSE(tampered.verify(auth(), params_));
}

TEST_F(QuorumCertTest, GenesisVerifiesTrivially) {
  const QuorumCert g = QuorumCert::genesis(crypto::Sha256::hash("genesis"));
  EXPECT_TRUE(g.is_genesis());
  EXPECT_TRUE(g.verify(auth(), params_));
}

TEST_F(QuorumCertTest, SerializeRoundTrip) {
  const crypto::Digest h = crypto::Sha256::hash("block");
  const QuorumCert qc = make_qc(5, h, params_.quorum());
  ser::Writer w;
  qc.serialize(w);
  ser::Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  const auto out = QuorumCert::deserialize(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, qc);
  EXPECT_TRUE(out->verify(auth(), params_));
}

TEST_F(QuorumCertTest, DiamondTwoQuorumRequired) {
  // (diamond-2): a QC must carry 2f+1 distinct signers; fewer fails.
  const crypto::Digest h = crypto::Sha256::hash("block");
  crypto::QuorumAggregator agg(auth(), QuorumCert::statement(1, h), params_.small_quorum());
  for (ProcessId id = 0; id < params_.small_quorum(); ++id) {
    agg.add(crypto::threshold_share(auth_->signer_for(id), QuorumCert::statement(1, h)));
  }
  const QuorumCert thin(1, h, agg.aggregate());
  EXPECT_FALSE(thin.verify(auth(), params_)) << "f+1 signatures are not a quorum";
}

TEST_F(QuorumCertTest, StatementCacheMatchesDirectComputation) {
  StatementCache cache;
  const crypto::Digest h1 = crypto::Sha256::hash("a");
  const crypto::Digest h2 = crypto::Sha256::hash("b");
  // Repeats (the n-votes-for-one-block shape), alternating views (the
  // leader-aggregates-v-while-voting-v+1 shape), and a same-slot
  // collision (views 1 and 9 map to one direct-mapped entry).
  for (const View v : {1, 2, 1, 2, 9, 1}) {
    for (const crypto::Digest& h : {h1, h2}) {
      EXPECT_EQ(cache.get(v, h), QuorumCert::statement(v, h)) << "view " << v;
    }
  }
}

TEST_F(QuorumCertTest, VerifyCacheAcceptsOnlyTheExactVerifiedBytes) {
  const crypto::Digest h = crypto::Sha256::hash("block");
  const QuorumCert qc = make_qc(3, h, params_.quorum());
  QcVerifyCache cache;
  EXPECT_TRUE(qc.verify(auth(), params_, &cache));
  EXPECT_TRUE(cache.known_good(cache.fingerprint(qc)));
  EXPECT_TRUE(qc.verify(auth(), params_, &cache)) << "memo hit must still accept";

  // A *different* QC for the same (view, block) — here a thin one with
  // fewer signers — must not ride the memo: its fingerprint differs.
  crypto::QuorumAggregator agg(auth(), QuorumCert::statement(3, h), params_.small_quorum());
  for (ProcessId id = 0; id < params_.small_quorum(); ++id) {
    agg.add(crypto::threshold_share(auth_->signer_for(id), QuorumCert::statement(3, h)));
  }
  const QuorumCert thin(3, h, agg.aggregate());
  EXPECT_FALSE(thin.verify(auth(), params_, &cache));
  EXPECT_FALSE(cache.known_good(cache.fingerprint(thin)));
}

}  // namespace
}  // namespace lumiere::consensus
