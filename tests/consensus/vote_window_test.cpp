// The (diamond-2) vote window, pinned for every core: a leader that has
// moved past view v must not assemble a QC for v from votes that arrive
// later. Without this rule, processors passing through v at *disjoint*
// times could combine into a "quorum" that never shared an interval —
// exactly what (diamond-2) rules out, and the loophole that would let
// Fever fake its way out of the Table 1 model separation (see
// tests/pacemaker/fever_test.cpp).
#include <gtest/gtest.h>

#include "consensus/chained_hotstuff.h"
#include "consensus/hotstuff2.h"
#include "consensus/simple_view_core.h"
#include "testutil/core_harness.h"

namespace lumiere::consensus {
namespace {

/// n = 7 (f = 2, quorum = 5). View 1's leader proposes with only four
/// co-resident voters (one early node passed through the view before the
/// proposal landed), the leader then moves on, and the two stragglers'
/// votes arrive late. The QC for view 1 must never form.
template <typename Core>
void expect_no_late_qc() {
  testutil::CoreHarness<Core> h(7);
  h.enter_view_all(0);
  ASSERT_TRUE(h.all_saw_qc(0));

  // p0 flashes through view 1 (its NewView/view bookkeeping counts, but
  // it is in view 2 before any proposal can reach it)...
  h.enter_view(0, 1);
  h.enter_view(0, 2);
  // ...while the leader p1 and three replicas enter and stay.
  h.enter_view(1, 1);
  h.enter_view(2, 1);
  h.enter_view(3, 1);
  h.enter_view(4, 1);
  h.settle();
  // Four votes (p1 self + p2..p4) < 2f+1: nothing certified yet.
  ASSERT_FALSE(h.all_saw_qc(1));

  // The leader gives up on view 1.
  h.enter_view(1, 2);
  h.settle();

  // Stragglers finally reach view 1 and vote; their votes land at a
  // leader that has left the view.
  h.enter_view(5, 1);
  h.enter_view(6, 1);
  h.settle();
  for (ProcessId id = 0; id < 7; ++id) {
    for (const auto& qc : h.node(id).qcs_seen) {
      EXPECT_NE(qc.view(), 1) << "core assembled a QC from disjoint view passes (node "
                              << id << ")";
    }
  }
}

TEST(VoteWindowTest, SimpleViewCoreDropsLateVotes) { expect_no_late_qc<SimpleViewCore>(); }

TEST(VoteWindowTest, ChainedHotStuffDropsLateVotes) { expect_no_late_qc<ChainedHotStuff>(); }

TEST(VoteWindowTest, HotStuff2DropsLateVotes) { expect_no_late_qc<HotStuff2>(); }

/// Votes arriving while the leader is still *in* the view are aggregated
/// even when voters trickle in — (diamond-2) needs a shared interval,
/// which "leader still in v when the last vote lands" provides: every
/// voter is in a view >= v at that instant and the leader anchors v.
TEST(VoteWindowTest, StaggeredVotesWithinTheViewStillFormQc) {
  testutil::CoreHarness<SimpleViewCore> h(7);
  h.enter_view_all(0);
  h.enter_view(1, 1);  // leader proposes on entry
  h.settle();
  for (const ProcessId replica : {2U, 3U, 4U}) {
    h.enter_view(replica, 1);
    h.settle();
    EXPECT_FALSE(h.all_saw_qc(1)) << "quorum not yet reached at replica " << replica;
  }
  h.enter_view(0, 1);  // the 2f+1-th participant arrives last
  h.settle();
  EXPECT_TRUE(h.all_saw_qc(1));
}

}  // namespace
}  // namespace lumiere::consensus
