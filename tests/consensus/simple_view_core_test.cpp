#include "consensus/simple_view_core.h"

#include <gtest/gtest.h>

#include "testutil/core_harness.h"

namespace lumiere::consensus {
namespace {

using Harness = testutil::CoreHarness<SimpleViewCore>;

TEST(SimpleViewCoreTest, HonestViewProducesQcForAll) {
  Harness h(4);
  h.enter_view_all(0);
  EXPECT_TRUE(h.all_saw_qc(0));
  EXPECT_EQ(h.node(0).qcs_formed.size(), 1U) << "leader of view 0 is p0";
  EXPECT_EQ(h.node(1).qcs_formed.size(), 0U);
}

TEST(SimpleViewCoreTest, SuccessiveViewsChainHighQc) {
  Harness h(4);
  for (View v = 0; v < 8; ++v) h.enter_view_all(v);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(h.core(id).high_qc().view(), 7);
  }
}

TEST(SimpleViewCoreTest, QcCarriesQuorumSignatures) {
  Harness h(7);
  h.enter_view_all(0);
  ASSERT_FALSE(h.node(0).qcs_formed.empty());
  const QuorumCert& qc = h.node(0).qcs_formed[0];
  EXPECT_GE(qc.sig().signer_count(), h.params().quorum());
  EXPECT_TRUE(qc.verify(h.auth_view(), h.params()));
}

TEST(SimpleViewCoreTest, LateEntrantVotesFromBufferedProposal) {
  Harness h(4);
  // Only 3 of 4 enter view 0: quorum = 3 still completes.
  h.enter_view(0, 0);
  h.enter_view(1, 0);
  h.enter_view(2, 0);
  h.settle();
  EXPECT_TRUE(h.all_saw_qc(0)) << "QC broadcast reaches even the laggard";
}

TEST(SimpleViewCoreTest, NoQcWithoutQuorum) {
  Harness h(4);
  // Only 2 of 4 (= f+1) enter the view: no quorum, no QC.
  h.enter_view(0, 0);
  h.enter_view(1, 0);
  h.settle();
  EXPECT_FALSE(h.all_saw_qc(0));
  EXPECT_TRUE(h.node(0).qcs_formed.empty());
}

TEST(SimpleViewCoreTest, ViewsAreMonotoneAndIdempotent) {
  Harness h(4);
  h.enter_view_all(3);
  h.enter_view_all(3);  // duplicate: no double proposal
  h.enter_view_all(1);  // regression attempt: ignored
  EXPECT_EQ(h.core(0).current_view(), 3);
  h.settle();
  // Exactly one QC for view 3 at the leader (p3).
  EXPECT_EQ(h.node(3).qcs_formed.size(), 1U);
}

TEST(SimpleViewCoreTest, VotesOnlyOncePerView) {
  Harness h(4);
  h.enter_view_all(0);
  EXPECT_EQ(h.core(1).last_voted_view(), 0);
  // Re-delivering the proposal must not produce another vote (the vote
  // aggregator would reject the duplicate share anyway; the core-side
  // guard is last_voted_view).
  h.enter_view_all(0);
  EXPECT_EQ(h.core(1).last_voted_view(), 0);
}

TEST(SimpleViewCoreTest, IgnoresProposalFromNonLeader) {
  Harness h(4);
  // p1 crafts a proposal for view 0 (whose leader is p0).
  const QuorumCert genesis = QuorumCert::genesis(Block::genesis().hash());
  auto bogus = std::make_shared<ProposalMsg>(Block(Block::genesis().hash(), 0, {1}, genesis));
  h.network().send(1, 2, bogus);
  h.enter_view(2, 0);
  h.settle();
  EXPECT_EQ(h.core(2).last_voted_view(), -1) << "no vote for an illegitimate proposer";
}

TEST(SimpleViewCoreTest, DeadlineForfeitsQc) {
  // may_form_qc == false: the leader must never produce a QC.
  testutil::CoreHarness<SimpleViewCore> h(4, Duration::micros(10),
                                          [](View) { return false; });
  h.enter_view_all(0);
  EXPECT_TRUE(h.node(0).qcs_formed.empty());
  EXPECT_FALSE(h.all_saw_qc(0));
}

TEST(SimpleViewCoreTest, SkippedViewsStillWork) {
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(5);  // views 1-4 skipped entirely
  EXPECT_TRUE(h.all_saw_qc(5));
  for (ProcessId id = 0; id < 4; ++id) EXPECT_EQ(h.core(id).high_qc().view(), 5);
}

/// Parametrized sweep: (diamond-1) holds across cluster sizes — an honest
/// view with everyone synchronized completes for all n.
class SimpleCoreSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimpleCoreSweep, EveryViewCompletes) {
  Harness h(GetParam());
  for (View v = 0; v < 5; ++v) {
    h.enter_view_all(v);
    EXPECT_TRUE(h.all_saw_qc(v)) << "view " << v << " n=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimpleCoreSweep, ::testing::Values(4U, 7U, 13U, 31U));

}  // namespace
}  // namespace lumiere::consensus
