#include "consensus/kv_store.h"

#include <gtest/gtest.h>

#include "consensus/mempool.h"

namespace lumiere::consensus {
namespace {

std::vector<std::uint8_t> batch_of(std::initializer_list<std::vector<std::uint8_t>> commands) {
  Mempool pool(1 << 20);
  for (const auto& cmd : commands) pool.add(cmd);
  return pool.next_batch();
}

TEST(KvStoreTest, SetGetDel) {
  KvStore store;
  store.apply(batch_of({KvStore::set_command("a", "1"), KvStore::set_command("b", "2")}));
  EXPECT_EQ(store.get("a"), "1");
  EXPECT_EQ(store.get("b"), "2");
  EXPECT_EQ(store.size(), 2U);
  store.apply(batch_of({KvStore::del_command("a"), KvStore::set_command("b", "3")}));
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.get("b"), "3");
  EXPECT_EQ(store.applied_commands(), 4U);
}

TEST(KvStoreTest, DeterministicDigest) {
  KvStore a;
  KvStore b;
  // Different interleavings, same final state.
  a.apply(batch_of({KvStore::set_command("x", "1"), KvStore::set_command("y", "2")}));
  b.apply(batch_of({KvStore::set_command("y", "0")}));
  b.apply(batch_of({KvStore::set_command("x", "1"), KvStore::set_command("y", "2")}));
  EXPECT_EQ(a.state_digest(), b.state_digest());
  b.apply(batch_of({KvStore::set_command("z", "3")}));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvStoreTest, EmptyStateDigestStable) {
  EXPECT_EQ(KvStore().state_digest(), KvStore().state_digest());
}

TEST(KvStoreTest, MalformedCommandsSkippedDeterministically) {
  KvStore a;
  KvStore b;
  const std::vector<std::uint8_t> garbage = {0xFF, 0x00, 0x13};
  const std::vector<std::uint8_t> truncated = {0x01, 0x05};  // SET with bad key length
  const auto batch = batch_of({garbage, KvStore::set_command("k", "v"), truncated});
  EXPECT_EQ(a.apply(batch), 1U);
  EXPECT_EQ(b.apply(batch), 1U);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.get("k"), "v");
}

TEST(KvStoreTest, TrailingBytesRejected) {
  // A SET command with trailing junk must not apply (exhausted() check).
  auto cmd = KvStore::set_command("k", "v");
  cmd.push_back(0xAB);
  KvStore store;
  EXPECT_EQ(store.apply(batch_of({cmd})), 0U);
}

TEST(KvStoreTest, BinarySafeKeysAndValues) {
  KvStore store;
  const std::string key("\x00\x01\xFFkey", 6);
  const std::string value("\n\r\t\x00", 4);
  store.apply(batch_of({KvStore::set_command(key, value)}));
  EXPECT_EQ(store.get(key), value);
}

TEST(KvStoreTest, DelOfMissingKeyIsFineAndCounted) {
  KvStore store;
  EXPECT_EQ(store.apply(batch_of({KvStore::del_command("ghost")})), 1U);
  EXPECT_EQ(store.size(), 0U);
}

}  // namespace
}  // namespace lumiere::consensus
