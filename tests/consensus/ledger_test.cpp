#include "consensus/ledger.h"

#include <gtest/gtest.h>

namespace lumiere::consensus {
namespace {

QuorumCert genesis_qc() { return QuorumCert::genesis(Block::genesis().hash()); }

TEST(LedgerTest, CommitsChainInOrder) {
  Ledger ledger;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block b1(b0.hash(), 1, {1}, genesis_qc());
  ledger.commit(b0, TimePoint(10));
  ledger.commit(b1, TimePoint(20));
  ASSERT_EQ(ledger.size(), 2U);
  EXPECT_EQ(ledger.entries()[0].view, 0);
  EXPECT_EQ(ledger.entries()[1].view, 1);
  EXPECT_EQ(ledger.entries()[1].parent, b0.hash());
  EXPECT_EQ(ledger.entries()[0].committed_at, TimePoint(10));
}

TEST(LedgerTest, PrefixConsistency) {
  Ledger a;
  Ledger b;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block b1(b0.hash(), 1, {1}, genesis_qc());
  a.commit(b0, TimePoint(1));
  a.commit(b1, TimePoint(2));
  b.commit(b0, TimePoint(3));
  EXPECT_TRUE(a.prefix_consistent_with(b));
  EXPECT_TRUE(b.prefix_consistent_with(a));

  Ledger c;
  const Block fork(Block::genesis().hash(), 0, {9}, genesis_qc());
  c.commit(fork, TimePoint(1));
  EXPECT_FALSE(a.prefix_consistent_with(c));
}

TEST(LedgerDeathTest, RejectsBrokenChain) {
  Ledger ledger;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block stranger(crypto::Sha256::hash("elsewhere"), 1, {1}, genesis_qc());
  ledger.commit(b0, TimePoint(1));
  EXPECT_DEATH(ledger.commit(stranger, TimePoint(2)), "chain");
}

TEST(LedgerDeathTest, RejectsNonMonotoneViews) {
  Ledger ledger;
  const Block b0(Block::genesis().hash(), 5, {0}, genesis_qc());
  const Block b1(b0.hash(), 5, {1}, genesis_qc());
  ledger.commit(b0, TimePoint(1));
  EXPECT_DEATH(ledger.commit(b1, TimePoint(2)), "increase");
}

}  // namespace
}  // namespace lumiere::consensus
