#include "consensus/block.h"

#include <gtest/gtest.h>

namespace lumiere::consensus {
namespace {

QuorumCert genesis_qc() { return QuorumCert::genesis(Block::genesis().hash()); }

TEST(BlockTest, GenesisIsStable) {
  const Block& g1 = Block::genesis();
  const Block& g2 = Block::genesis();
  EXPECT_EQ(g1.hash(), g2.hash());
  EXPECT_EQ(g1.view(), -1);
  EXPECT_TRUE(g1.payload().empty());
}

TEST(BlockTest, HashBindsAllFields) {
  const Block base(Block::genesis().hash(), 1, {1, 2}, genesis_qc());
  const Block diff_view(Block::genesis().hash(), 2, {1, 2}, genesis_qc());
  const Block diff_payload(Block::genesis().hash(), 1, {1, 3}, genesis_qc());
  const Block diff_parent(crypto::Sha256::hash("other"), 1, {1, 2}, genesis_qc());
  EXPECT_NE(base.hash(), diff_view.hash());
  EXPECT_NE(base.hash(), diff_payload.hash());
  EXPECT_NE(base.hash(), diff_parent.hash());
}

TEST(BlockTest, SerializeRoundTrip) {
  const Block block(Block::genesis().hash(), 7, {9, 8, 7}, genesis_qc());
  ser::Writer w;
  block.serialize(w);
  ser::Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  const auto out = Block::deserialize(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->hash(), block.hash());
  EXPECT_EQ(out->view(), 7);
}

TEST(BlockStoreTest, InsertAndGet) {
  BlockStore store;
  EXPECT_TRUE(store.contains(Block::genesis().hash()));
  const Block b(Block::genesis().hash(), 0, {}, genesis_qc());
  const auto ptr = store.insert(b);
  EXPECT_EQ(ptr->hash(), b.hash());
  EXPECT_TRUE(store.contains(b.hash()));
  EXPECT_EQ(store.get(b.hash()), ptr);
  // Idempotent insert returns the same shared block.
  EXPECT_EQ(store.insert(b), ptr);
  EXPECT_EQ(store.size(), 2U);
}

TEST(BlockStoreTest, AncestorWalk) {
  BlockStore store;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block b1(b0.hash(), 1, {1}, genesis_qc());
  const Block b2(b1.hash(), 2, {2}, genesis_qc());
  store.insert(b0);
  store.insert(b1);
  store.insert(b2);
  EXPECT_EQ(store.ancestor(b2.hash(), 0)->hash(), b2.hash());
  EXPECT_EQ(store.ancestor(b2.hash(), 1)->hash(), b1.hash());
  EXPECT_EQ(store.ancestor(b2.hash(), 2)->hash(), b0.hash());
  EXPECT_EQ(store.ancestor(b2.hash(), 3)->hash(), Block::genesis().hash());
}

TEST(BlockStoreTest, ExtendsFollowsChain) {
  BlockStore store;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block b1(b0.hash(), 1, {1}, genesis_qc());
  const Block fork(Block::genesis().hash(), 1, {9}, genesis_qc());
  store.insert(b0);
  store.insert(b1);
  store.insert(fork);
  EXPECT_TRUE(store.extends(b1.hash(), b0.hash()));
  EXPECT_TRUE(store.extends(b1.hash(), Block::genesis().hash()));
  EXPECT_TRUE(store.extends(b0.hash(), b0.hash())) << "a block extends itself";
  EXPECT_FALSE(store.extends(fork.hash(), b0.hash()));
  EXPECT_FALSE(store.extends(b0.hash(), b1.hash())) << "extends is directional";
}

TEST(BlockStoreTest, ExtendsWithMissingAncestorsIsFalse) {
  BlockStore store;
  const Block b0(Block::genesis().hash(), 0, {0}, genesis_qc());
  const Block b1(b0.hash(), 1, {1}, genesis_qc());
  store.insert(b1);  // b0 missing
  EXPECT_FALSE(store.extends(b1.hash(), Block::genesis().hash()));
}

}  // namespace
}  // namespace lumiere::consensus
