#include "consensus/chained_hotstuff.h"

#include <gtest/gtest.h>

#include "testutil/core_harness.h"

namespace lumiere::consensus {
namespace {

using Harness = testutil::CoreHarness<ChainedHotStuff>;

TEST(ChainedHotStuffTest, ViewsProduceQcs) {
  Harness h(4);
  h.enter_view_all(0);
  EXPECT_TRUE(h.all_saw_qc(0));
}

TEST(ChainedHotStuffTest, ThreeChainCommits) {
  Harness h(4);
  for (View v = 0; v <= 3; ++v) h.enter_view_all(v);
  // Views 0,1,2 form a 3-chain with consecutive views once the QC for
  // view 2 circulates (inside view 3's proposal or QC broadcast):
  // block(0) commits everywhere.
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_GE(h.node(id).committed.size(), 1U) << "node " << id;
  }
  // All nodes committed the same first block.
  for (ProcessId id = 1; id < 4; ++id) {
    EXPECT_EQ(h.node(id).committed[0], h.node(0).committed[0]);
  }
}

TEST(ChainedHotStuffTest, CommitsAdvanceWithViews) {
  Harness h(4);
  for (View v = 0; v <= 10; ++v) h.enter_view_all(v);
  // With 11 consecutive successful views, at least 8 blocks commit.
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_GE(h.node(id).committed.size(), 8U);
  }
  EXPECT_EQ(h.core(0).last_committed_view(), 8);
}

TEST(ChainedHotStuffTest, LedgersPrefixConsistent) {
  Harness h(7);
  for (View v = 0; v <= 12; ++v) h.enter_view_all(v);
  const auto& reference = h.node(0).committed;
  ASSERT_FALSE(reference.empty());
  for (ProcessId id = 1; id < 7; ++id) {
    const auto& log = h.node(id).committed;
    const std::size_t common = std::min(log.size(), reference.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(log[i], reference[i]) << "divergence at node " << id << " index " << i;
    }
  }
}

TEST(ChainedHotStuffTest, GapInViewsBlocksConsecutiveCommit) {
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(1);
  h.enter_view_all(3);  // view 2 skipped: 1 -> 3 not consecutive
  h.enter_view_all(4);
  h.enter_view_all(5);
  h.enter_view_all(6);
  // Views 3,4,5 are consecutive: block(3) commits; nothing from before
  // the gap commits until that chain forms.
  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_GE(h.node(id).committed.size(), 1U);
  }
  EXPECT_GE(h.core(0).last_committed_view(), 3);
}

TEST(ChainedHotStuffTest, LockingPreventsVoteOnStaleBranch) {
  Harness h(4);
  for (View v = 0; v <= 4; ++v) h.enter_view_all(v);
  // After view 4 the nodes are locked on at least view 2's block.
  EXPECT_GE(h.core(1).locked_qc().view(), 2);
  // A proposal extending genesis (stale branch, old justify) must not be
  // voted for.
  const QuorumCert genesis = QuorumCert::genesis(Block::genesis().hash());
  auto stale = std::make_shared<ProposalMsg>(Block(Block::genesis().hash(), 5, {7}, genesis));
  h.network().send(5 % 4, 2, stale);
  h.enter_view(2, 5);
  h.settle();
  // Node 2's last vote stays at view <= 4 (it refused the stale block).
  EXPECT_LE(h.core(2).current_view(), 5);
  bool voted_for_stale = false;
  for (const auto& qc : h.node(2).qcs_seen) {
    if (qc.view() == 5) voted_for_stale = true;
  }
  EXPECT_FALSE(voted_for_stale);
}

TEST(ChainedHotStuffTest, RequiresNewViewQuorumBeforeProposal) {
  Harness h(4);
  // Only the leader enters the view: without 2f+1 NewView messages it
  // must not propose.
  h.enter_view(0, 0);
  h.settle();
  EXPECT_FALSE(h.all_saw_qc(0));
  // Two more arrive: quorum reached, proposal and QC flow.
  h.enter_view(1, 0);
  h.enter_view(2, 0);
  h.settle();
  EXPECT_TRUE(h.all_saw_qc(0));
}

/// Size sweep: the SMR pipeline commits across cluster sizes.
class HotStuffSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HotStuffSweep, CommitsAcrossSizes) {
  Harness h(GetParam());
  for (View v = 0; v <= 6; ++v) h.enter_view_all(v);
  for (ProcessId id = 0; id < GetParam(); ++id) {
    EXPECT_GE(h.node(id).committed.size(), 3U);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HotStuffSweep, ::testing::Values(4U, 7U, 10U));

}  // namespace
}  // namespace lumiere::consensus
