#include "consensus/mempool.h"

#include <gtest/gtest.h>

#include <string>

namespace lumiere::consensus {
namespace {

TEST(MempoolTest, BatchRoundTrip) {
  Mempool pool;
  EXPECT_EQ(pool.add("set x 1"), Admission::kAccepted);
  EXPECT_EQ(pool.add("set y 2"), Admission::kAccepted);
  const auto batch = pool.next_batch();
  EXPECT_EQ(pool.pending(), 0U);
  const auto cmds = Mempool::split_batch(batch);
  ASSERT_EQ(cmds.size(), 2U);
  EXPECT_EQ(std::string(cmds[0].begin(), cmds[0].end()), "set x 1");
  EXPECT_EQ(std::string(cmds[1].begin(), cmds[1].end()), "set y 2");
}

TEST(MempoolTest, EmptyBatch) {
  Mempool pool;
  EXPECT_TRUE(pool.next_batch().empty());
  EXPECT_TRUE(Mempool::split_batch({}).empty());
}

TEST(MempoolTest, RespectsBatchByteLimit) {
  Mempool pool(32);
  pool.add(std::string(20, 'a'));
  pool.add(std::string(20, 'b'));
  const auto first = pool.next_batch();
  EXPECT_EQ(Mempool::split_batch(first).size(), 1U) << "second command exceeds the limit";
  EXPECT_EQ(pool.pending(), 1U);
  const auto second = pool.next_batch();
  EXPECT_EQ(Mempool::split_batch(second).size(), 1U);
}

TEST(MempoolTest, RespectsBatchCountLimit) {
  Mempool pool(MempoolLimits{.max_batch_count = 3});
  for (int i = 0; i < 5; ++i) pool.add("cmd" + std::to_string(i));
  EXPECT_EQ(Mempool::split_batch(pool.next_batch()).size(), 3U);
  EXPECT_EQ(Mempool::split_batch(pool.next_batch()).size(), 2U);
}

TEST(MempoolTest, OversizedCommandRejectedAtAdd) {
  // The explicit policy (a command that can never fit a batch is a
  // client error, not a payload): rejected at add(), never silently
  // emitted oversize as the earlier drain loop did.
  Mempool pool(8);
  EXPECT_EQ(pool.add(std::string(100, 'z')), Admission::kOversized);
  EXPECT_EQ(pool.pending(), 0U);
  EXPECT_EQ(pool.rejected_oversized(), 1U);
  EXPECT_TRUE(pool.next_batch().empty());
  // Exactly at the budget (command + 4-byte frame) is still admissible.
  Mempool exact(8);
  EXPECT_EQ(exact.add(std::string(4, 'y')), Admission::kAccepted);
  EXPECT_EQ(Mempool::split_batch(exact.next_batch()).size(), 1U);
}

TEST(MempoolTest, Fifo) {
  Mempool pool;
  for (int i = 0; i < 10; ++i) pool.add(std::string(1, static_cast<char>('a' + i)));
  const auto cmds = Mempool::split_batch(pool.next_batch());
  ASSERT_EQ(cmds.size(), 10U);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cmds[i][0], static_cast<std::uint8_t>('a' + i));
}

TEST(MempoolTest, BoundedCapacityByCount) {
  Mempool pool(MempoolLimits{.max_pending_count = 2});
  EXPECT_EQ(pool.add("a"), Admission::kAccepted);
  EXPECT_EQ(pool.add("b"), Admission::kAccepted);
  EXPECT_EQ(pool.add("c"), Admission::kFull);
  EXPECT_EQ(pool.pending(), 2U);
  EXPECT_EQ(pool.rejected_full(), 1U);
  (void)pool.next_batch();
  EXPECT_EQ(pool.add("c"), Admission::kAccepted);
}

TEST(MempoolTest, BoundedCapacityByBytes) {
  Mempool pool(MempoolLimits{.max_pending_bytes = 10});
  EXPECT_EQ(pool.add(std::string(6, 'a')), Admission::kAccepted);
  EXPECT_EQ(pool.add(std::string(6, 'b')), Admission::kFull) << "6 + 6 > 10";
  EXPECT_EQ(pool.add(std::string(4, 'c')), Admission::kAccepted) << "6 + 4 fits";
  EXPECT_EQ(pool.pending_bytes(), 10U);
}

TEST(MempoolTest, DuplicateSuppression) {
  Mempool pool(MempoolLimits{.suppress_duplicates = true});
  EXPECT_EQ(pool.add("same"), Admission::kAccepted);
  EXPECT_EQ(pool.add("same"), Admission::kDuplicate);
  EXPECT_EQ(pool.pending(), 1U);
  // Once drained-for-good (legacy drain), the bytes may be admitted anew.
  (void)pool.next_batch();
  EXPECT_EQ(pool.add("same"), Admission::kAccepted);
  // The default keeps the legacy add-anything semantics.
  Mempool dups;
  EXPECT_EQ(dups.add("same"), Admission::kAccepted);
  EXPECT_EQ(dups.add("same"), Admission::kAccepted);
}

TEST(MempoolTest, DuplicateSuppressedWhileInFlight) {
  Mempool pool(MempoolLimits{.suppress_duplicates = true});
  pool.add("cmd");
  const auto batch = pool.next_batch(/*view=*/5);
  EXPECT_EQ(pool.in_flight(), 1U);
  EXPECT_EQ(pool.add("cmd"), Admission::kDuplicate) << "leased commands are still live";
  // The commit acks the lease and releases the digest.
  pool.on_commit(5, batch);
  EXPECT_EQ(pool.in_flight(), 0U);
  EXPECT_EQ(pool.acked(), 1U);
  EXPECT_EQ(pool.add("cmd"), Admission::kAccepted);
}

TEST(MempoolTest, AbandonedLeaseRequeuesInOrder) {
  Mempool pool;
  pool.add("first");
  pool.add("second");
  const auto lost = pool.next_batch(/*view=*/3);
  EXPECT_EQ(Mempool::split_batch(lost).size(), 2U);
  pool.add("third");
  // A commit at view 7 whose payload does not contain the leased
  // commands proves the view-3 proposal abandoned: both requeue at the
  // front, ahead of "third", preserving their order.
  Mempool other;
  other.add("unrelated");
  pool.on_commit(7, other.next_batch());
  EXPECT_EQ(pool.requeued(), 2U);
  EXPECT_EQ(pool.in_flight(), 0U);
  const auto cmds = Mempool::split_batch(pool.next_batch());
  ASSERT_EQ(cmds.size(), 3U);
  EXPECT_EQ(std::string(cmds[0].begin(), cmds[0].end()), "first");
  EXPECT_EQ(std::string(cmds[1].begin(), cmds[1].end()), "second");
  EXPECT_EQ(std::string(cmds[2].begin(), cmds[2].end()), "third");
}

TEST(MempoolTest, LeaseAboveCommittedViewSurvives) {
  Mempool pool;
  pool.add("late");
  (void)pool.next_batch(/*view=*/9);
  Mempool other;
  other.add("unrelated");
  pool.on_commit(/*view=*/7, other.next_batch());
  EXPECT_EQ(pool.in_flight(), 1U) << "a lease above the committed view may still commit";
  EXPECT_EQ(pool.requeued(), 0U);
}

TEST(MempoolTest, OneCommittedInstanceAcksOneLeasedCopy) {
  // Without duplicate suppression (the default), byte-identical commands
  // may be admitted and leased independently; a payload carrying the
  // bytes once must ack exactly one copy, and the other still requeues
  // when its own proposal is proven abandoned.
  Mempool pool;
  pool.add("twin");
  pool.add("twin");
  EXPECT_EQ(Mempool::split_batch(pool.next_batch(/*view=*/1)).size(), 2U);
  // A commit at view 1 carrying "twin" once: exactly one leased copy is
  // acked; the other belonged to the same dead proposal and requeues.
  Mempool one;
  one.add("twin");
  pool.on_commit(1, one.next_batch());
  EXPECT_EQ(pool.acked(), 1U);
  EXPECT_EQ(pool.requeued(), 1U);
  EXPECT_EQ(pool.pending(), 1U) << "the un-acked admitted copy must survive";
}

TEST(MempoolTest, PartialAckRequeuesOnlyTheRest) {
  Mempool pool;
  pool.add("kept");
  pool.add("dropped");
  (void)pool.next_batch(/*view=*/2);
  // A commit carrying only "kept" (e.g. an equivocating leader shipped a
  // different batch) acks it and requeues "dropped".
  Mempool partial;
  partial.add("kept");
  pool.on_commit(2, partial.next_batch());
  EXPECT_EQ(pool.acked(), 1U);
  EXPECT_EQ(pool.requeued(), 1U);
  const auto cmds = Mempool::split_batch(pool.next_batch());
  ASSERT_EQ(cmds.size(), 1U);
  EXPECT_EQ(std::string(cmds[0].begin(), cmds[0].end()), "dropped");
}

TEST(MempoolTest, SpaceAvailableSignalFiresOnReleaseEdge) {
  Mempool pool(MempoolLimits{.max_pending_count = 1});
  int signals = 0;
  pool.set_space_available([&] { ++signals; });
  pool.add("a");
  // Draining without a prior rejection is not a release edge.
  (void)pool.next_batch();
  EXPECT_EQ(signals, 0);
  pool.add("a2");
  EXPECT_EQ(pool.add("b"), Admission::kFull);
  (void)pool.next_batch();
  EXPECT_EQ(signals, 1) << "capacity freed after a kFull rejection";
  (void)pool.next_batch();
  EXPECT_EQ(signals, 1) << "one signal per starvation episode";
}

TEST(MempoolTest, CountersAccumulate) {
  Mempool pool(MempoolLimits{
      .max_batch_bytes = 64, .max_pending_count = 2, .suppress_duplicates = true});
  pool.add("a");
  pool.add("a");                  // duplicate
  pool.add("b");
  pool.add("c");                  // full
  pool.add(std::string(80, 'x'));  // oversized
  EXPECT_EQ(pool.admitted(), 2U);
  EXPECT_EQ(pool.rejected_duplicate(), 1U);
  EXPECT_EQ(pool.rejected_full(), 1U);
  EXPECT_EQ(pool.rejected_oversized(), 1U);
}

}  // namespace
}  // namespace lumiere::consensus
