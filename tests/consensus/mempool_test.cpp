#include "consensus/mempool.h"

#include <gtest/gtest.h>

#include <string>

namespace lumiere::consensus {
namespace {

TEST(MempoolTest, BatchRoundTrip) {
  Mempool pool;
  pool.add("set x 1");
  pool.add("set y 2");
  const auto batch = pool.next_batch();
  EXPECT_EQ(pool.pending(), 0U);
  const auto cmds = Mempool::split_batch(batch);
  ASSERT_EQ(cmds.size(), 2U);
  EXPECT_EQ(std::string(cmds[0].begin(), cmds[0].end()), "set x 1");
  EXPECT_EQ(std::string(cmds[1].begin(), cmds[1].end()), "set y 2");
}

TEST(MempoolTest, EmptyBatch) {
  Mempool pool;
  EXPECT_TRUE(pool.next_batch().empty());
  EXPECT_TRUE(Mempool::split_batch({}).empty());
}

TEST(MempoolTest, RespectsBatchLimit) {
  Mempool pool(32);
  pool.add(std::string(20, 'a'));
  pool.add(std::string(20, 'b'));
  const auto first = pool.next_batch();
  EXPECT_EQ(Mempool::split_batch(first).size(), 1U) << "second command exceeds the limit";
  EXPECT_EQ(pool.pending(), 1U);
  const auto second = pool.next_batch();
  EXPECT_EQ(Mempool::split_batch(second).size(), 1U);
}

TEST(MempoolTest, OversizedCommandStillShipsAlone) {
  Mempool pool(8);
  pool.add(std::string(100, 'z'));
  const auto batch = pool.next_batch();
  EXPECT_EQ(Mempool::split_batch(batch).size(), 1U)
      << "a command larger than the limit goes out alone rather than starving";
}

TEST(MempoolTest, Fifo) {
  Mempool pool;
  for (int i = 0; i < 10; ++i) pool.add(std::string(1, static_cast<char>('a' + i)));
  const auto cmds = Mempool::split_batch(pool.next_batch());
  ASSERT_EQ(cmds.size(), 10U);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cmds[i][0], static_cast<std::uint8_t>('a' + i));
}

}  // namespace
}  // namespace lumiere::consensus
