// HotStuff-2 (two-phase) core: commit/lock rules, the dual proposal path
// (responsive vs Delta-fallback), and safety of the two-phase vote rule.
#include "consensus/hotstuff2.h"

#include <gtest/gtest.h>

#include "consensus/chained_hotstuff.h"
#include "testutil/core_harness.h"

namespace lumiere::consensus {
namespace {

using Harness = testutil::CoreHarness<HotStuff2>;
using Chained3Harness = testutil::CoreHarness<ChainedHotStuff>;

TEST(HotStuff2Test, ViewsProduceQcs) {
  Harness h(4);
  h.enter_view_all(0);
  EXPECT_TRUE(h.all_saw_qc(0));
}

TEST(HotStuff2Test, TwoChainCommitsOneViewEarlierThanThreeChain) {
  // After views 0 and 1 complete, the QC for view 1 certifies block(1)
  // whose justify certifies block(0) at the consecutive view 0: HotStuff-2
  // commits block(0). The 3-chain rule still has nothing to commit.
  Harness h2(4);
  h2.enter_view_all(0);
  h2.enter_view_all(1);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_GE(h2.node(id).committed.size(), 1U) << "HS2 node " << id;
  }

  Chained3Harness h3(4);
  h3.enter_view_all(0);
  h3.enter_view_all(1);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_TRUE(h3.node(id).committed.empty()) << "3-chain node " << id;
  }
}

TEST(HotStuff2Test, CommitFrontierLeadsThreeChainByOneView) {
  Harness h2(4);
  Chained3Harness h3(4);
  for (View v = 0; v <= 10; ++v) {
    h2.enter_view_all(v);
    h3.enter_view_all(v);
  }
  EXPECT_EQ(h2.core(0).last_committed_view(), 9);
  EXPECT_EQ(h3.core(0).last_committed_view(), 8);
}

TEST(HotStuff2Test, LedgersPrefixConsistent) {
  Harness h(7);
  for (View v = 0; v <= 12; ++v) h.enter_view_all(v);
  const auto& reference = h.node(0).committed;
  ASSERT_FALSE(reference.empty());
  for (ProcessId id = 1; id < 7; ++id) {
    const auto& log = h.node(id).committed;
    const std::size_t common = std::min(log.size(), reference.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(log[i], reference[i]) << "divergence at node " << id << " index " << i;
    }
  }
}

TEST(HotStuff2Test, LockIsOneChain) {
  // HotStuff-2 locks directly on any newer observed QC; the 3-phase
  // protocol lags one chain link behind.
  Harness h2(4);
  Chained3Harness h3(4);
  h2.enter_view_all(0);
  h3.enter_view_all(0);
  EXPECT_EQ(h2.core(1).locked_qc().view(), 0);
  EXPECT_EQ(h3.core(1).locked_qc().view(), -1);
  h2.enter_view_all(1);
  h3.enter_view_all(1);
  EXPECT_EQ(h2.core(1).locked_qc().view(), 1);
  EXPECT_EQ(h3.core(1).locked_qc().view(), 0);
}

TEST(HotStuff2Test, NoCommitWithoutConsecutiveViews) {
  Harness h(4);
  // Even-only views: every justify gap is 2, so the 2-chain consecutive
  // rule never fires.
  for (View v = 0; v <= 8; v += 2) h.enter_view_all(v);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_TRUE(h.node(id).committed.empty())
        << "2-chain commit requires consecutive views";
  }
}

TEST(HotStuff2Test, GapInViewsResumesCommitting) {
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(1);
  h.enter_view_all(3);  // view 2 skipped
  h.enter_view_all(4);
  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_GE(h.node(id).committed.size(), 2U);
  }
  // Views 3,4 are consecutive: block(3) commits (and block(0) before it).
  EXPECT_GE(h.core(0).last_committed_view(), 3);
}

TEST(HotStuff2Test, SteadyStateProposalsAreAllResponsive) {
  Harness h(4);
  for (View v = 0; v <= 10; ++v) h.enter_view_all(v);
  std::uint64_t responsive = 0;
  std::uint64_t fallback = 0;
  for (ProcessId id = 0; id < 4; ++id) {
    responsive += h.core(id).responsive_proposals();
    fallback += h.core(id).fallback_proposals();
  }
  // Every view's leader held the QC for the previous view (view 0 holds
  // genesis), so the Delta fallback never gated a proposal.
  EXPECT_EQ(responsive, 11U);
  EXPECT_EQ(fallback, 0U);
}

TEST(HotStuff2Test, FallbackProposalWaitsDeltaAfterFailedView) {
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(1);
  // View 2 fails entirely (nobody enters it). Everyone then moves to
  // view 3, whose leader lacks a QC for view 2 and must take the
  // Delta-fallback path.
  for (ProcessId id = 0; id < 4; ++id) h.enter_view(id, 3);
  h.sim().run_for(h.params().delta_cap / 2);
  EXPECT_FALSE(h.all_saw_qc(3)) << "proposed before the Delta fallback elapsed";
  h.settle();
  EXPECT_TRUE(h.all_saw_qc(3));
  EXPECT_EQ(h.core(3 % 4).fallback_proposals(), 1U);
  EXPECT_EQ(h.core(3 % 4).responsive_proposals(), 0U);
}

TEST(HotStuff2Test, ParentJustifyMismatchGetsNoVotes) {
  Harness h(4);
  for (View v = 0; v <= 2; ++v) h.enter_view_all(v);
  ASSERT_TRUE(h.all_saw_qc(2));
  // Byzantine leader of view 3 pairs a perfectly valid QC with an
  // unrelated parent. The structural vote rule must refuse it.
  QuorumCert valid_qc;
  for (const auto& qc : h.node(0).qcs_seen) {
    if (qc.view() == 2) valid_qc = qc;
  }
  ASSERT_EQ(valid_qc.view(), 2);
  const crypto::Digest bogus_parent = crypto::Sha256::hash("unrelated-parent");
  auto forged = std::make_shared<ProposalMsg>(Block(bogus_parent, 3, {1}, valid_qc));
  for (ProcessId id = 0; id < 4; ++id) h.network().send(3, id, forged);
  for (ProcessId id = 0; id < 4; ++id) {
    if (id != 3) h.enter_view(id, 3);
  }
  h.settle();
  for (ProcessId id = 0; id < 4; ++id) {
    for (const auto& qc : h.node(id).qcs_seen) {
      EXPECT_NE(qc.view(), 3) << "a structurally invalid proposal was certified";
    }
  }
}

TEST(HotStuff2Test, StaleJustifyCannotOverrideLock) {
  Harness h(4);
  for (View v = 0; v <= 4; ++v) h.enter_view_all(v);
  ASSERT_GE(h.core(2).locked_qc().view(), 3);
  // A proposal extending genesis is structurally fine (parent matches its
  // justify) but its justify is far older than the lock.
  const QuorumCert genesis = QuorumCert::genesis(Block::genesis().hash());
  auto stale = std::make_shared<ProposalMsg>(Block(Block::genesis().hash(), 5, {7}, genesis));
  h.network().send(5 % 4, 2, stale);
  h.enter_view(2, 5);
  h.settle();
  for (const auto& qc : h.node(2).qcs_seen) {
    EXPECT_NE(qc.view(), 5) << "stale-justify proposal was certified";
  }
}

TEST(HotStuff2Test, ReProposalUnderSameJustifyIsVotable) {
  // The >= in the vote rule: after a failed view, the new leader may
  // re-extend the same justify the lock points to.
  Harness h(4);
  h.enter_view_all(0);
  h.enter_view_all(1);  // lock is now QC(1) everywhere
  // View 2 fails; view 3's leader re-extends QC(1). justify.view == lock.
  for (ProcessId id = 0; id < 4; ++id) h.enter_view(id, 3);
  h.settle();
  EXPECT_TRUE(h.all_saw_qc(3)) << "re-proposal under the locked justify must be votable";
}

/// Size sweep: the two-phase pipeline commits across cluster sizes.
class HotStuff2Sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HotStuff2Sweep, CommitsAcrossSizes) {
  Harness h(GetParam());
  for (View v = 0; v <= 6; ++v) h.enter_view_all(v);
  for (ProcessId id = 0; id < GetParam(); ++id) {
    EXPECT_GE(h.node(id).committed.size(), 4U);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HotStuff2Sweep, ::testing::Values(4U, 7U, 10U));

}  // namespace
}  // namespace lumiere::consensus
