// ComplexityLedger: distribution aggregation, growth-exponent fitting,
// and the JSONL / Chrome trace-event exports.
#include "obs/ledger.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lumiere::obs {
namespace {

SyncSpan make_span(ProcessId node, std::uint64_t msgs, std::uint64_t bytes,
                   std::uint64_t shares, Duration dur, bool completed = true) {
  SyncSpan span;
  span.node = node;
  span.from_view = 1;
  span.target_view = 2;
  span.entered_view = 2;
  span.start = TimePoint(1000);
  span.end = TimePoint(1000) + dur;
  span.msgs_sent = msgs;
  span.bytes_sent = bytes;
  span.auth.shares = shares;
  span.completed = completed;
  return span;
}

TEST(ComplexityLedgerTest, SummarizeAggregatesCompletedSpans) {
  std::vector<SyncSpan> spans;
  spans.push_back(make_span(0, 10, 440, 2, Duration(100)));
  spans.push_back(make_span(1, 20, 880, 4, Duration(300)));
  spans.push_back(make_span(2, 30, 1320, 6, Duration(200)));
  spans.push_back(make_span(3, 999, 9999, 99, Duration(999), /*completed=*/false));

  const LedgerSummary summary = ComplexityLedger::summarize(spans);
  EXPECT_EQ(summary.spans, 3U) << "open spans must be skipped";
  EXPECT_DOUBLE_EQ(summary.msgs.mean, 20.0);
  EXPECT_DOUBLE_EQ(summary.msgs.p50, 20.0);
  EXPECT_DOUBLE_EQ(summary.msgs.max, 30.0);
  EXPECT_DOUBLE_EQ(summary.bytes.mean, 880.0);
  EXPECT_DOUBLE_EQ(summary.auth_ops.mean, 4.0);
  EXPECT_DOUBLE_EQ(summary.duration_us.mean, 200.0);
  EXPECT_DOUBLE_EQ(summary.duration_us.max, 300.0);
  EXPECT_GE(summary.msgs.p95, 20.0);
  EXPECT_LE(summary.msgs.p95, 30.0);
}

TEST(ComplexityLedgerTest, SummarizeOfNothingIsZero) {
  const LedgerSummary summary = ComplexityLedger::summarize({});
  EXPECT_EQ(summary.spans, 0U);
  EXPECT_DOUBLE_EQ(summary.msgs.mean, 0.0);
  EXPECT_DOUBLE_EQ(summary.duration_us.max, 0.0);
}

TEST(ComplexityLedgerTest, FitExponentRecoversKnownGrowthOrders) {
  // cost = 7n: slope 1.
  std::vector<std::pair<double, double>> linear;
  // cost = 3n^2: slope 2.
  std::vector<std::pair<double, double>> quadratic;
  for (const double n : {4.0, 16.0, 64.0, 256.0}) {
    linear.emplace_back(n, 7.0 * n);
    quadratic.emplace_back(n, 3.0 * n * n);
  }
  EXPECT_NEAR(ComplexityLedger::fit_exponent(linear), 1.0, 1e-9);
  EXPECT_NEAR(ComplexityLedger::fit_exponent(quadratic), 2.0, 1e-9);

  // Fewer than two usable points: no fit.
  EXPECT_DOUBLE_EQ(ComplexityLedger::fit_exponent({}), 0.0);
  EXPECT_DOUBLE_EQ(ComplexityLedger::fit_exponent({{4.0, 28.0}}), 0.0);
  // Non-positive points are skipped, not fitted.
  EXPECT_DOUBLE_EQ(ComplexityLedger::fit_exponent({{4.0, 0.0}, {16.0, 0.0}}), 0.0);
}

TEST(ComplexityLedgerTest, JsonlExportsOneObjectPerCompletedSpan) {
  std::vector<SyncSpan> spans;
  spans.push_back(make_span(0, 10, 440, 2, Duration(100)));
  spans.push_back(make_span(1, 20, 880, 4, Duration(300)));
  std::ostringstream out;
  ComplexityLedger::write_jsonl(out, "lumiere/n=4", spans);
  const std::string text = out.str();

  std::size_t lines = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"label\":\"lumiere/n=4\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2U);
  EXPECT_NE(text.find("\"msgs\":10"), std::string::npos);
  EXPECT_NE(text.find("\"shares\":4"), std::string::npos);
  EXPECT_NE(text.find("\"auth_ops\":2"), std::string::npos);
}

TEST(ComplexityLedgerTest, ChromeTraceIsWellFormed) {
  std::vector<SyncSpan> spans;
  spans.push_back(make_span(0, 10, 440, 2, Duration(100)));
  spans.push_back(make_span(1, 20, 880, 4, Duration::zero()));  // dur clamps to >= 1
  std::ostringstream out;
  ComplexityLedger::write_chrome_trace(out, spans);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0U);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":1"), std::string::npos) << "zero-length slice not clamped";
  EXPECT_EQ(text.find("\"dur\":0"), std::string::npos);
}

}  // namespace
}  // namespace lumiere::obs
