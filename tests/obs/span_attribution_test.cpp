// Cluster-level span attribution: a scripted partition forces re-sync
// episodes, and the tracer's spans must account for them — costs
// cross-checked against the MetricsCollector's independent send counting,
// byte-for-byte reproducible across identical runs, on both transports.
#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "obs/tracer.h"
#include "runtime/cluster.h"
#include "sim/trace.h"

namespace lumiere::obs {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

ScenarioBuilder partition_options(std::uint64_t seed) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(seed)
      .delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  // No side holds a quorum: both halves stall, time out, and re-sync
  // through the pacemaker once healed.
  builder.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(2).ticks()));
  builder.heal(TimePoint(Duration::seconds(4).ticks()));
  return builder;
}

TEST(SpanAttributionTest, PartitionResyncEmitsAttributedSpans) {
  Cluster cluster(partition_options(4242));
  cluster.run_for(Duration::seconds(8));

  const SyncTracer* tracer = cluster.sync_tracer();
  ASSERT_NE(tracer, nullptr) << "tracer must default on";

  const std::vector<SyncSpan> spans = tracer->completed_spans();
  ASSERT_FALSE(spans.empty()) << "a quorumless partition must force sync episodes";

  std::vector<std::uint64_t> span_msgs(4, 0);
  std::vector<std::uint64_t> span_auth(4, 0);
  bool some_span_in_partition = false;
  for (const SyncSpan& span : spans) {
    ASSERT_LT(span.node, 4U);
    EXPECT_TRUE(span.completed);
    EXPECT_GT(span.entered_view, span.from_view);
    EXPECT_GE(span.end, span.start);
    // sync_started fires immediately before the episode's first send, so
    // a completed episode carries at least that message and the share it
    // signed.
    EXPECT_GE(span.msgs_sent, 1U);
    EXPECT_GE(span.auth_ops(), 1U);
    span_msgs[span.node] += span.msgs_sent;
    span_auth[span.node] += span.auth.total();
    some_span_in_partition =
        some_span_in_partition || (span.start >= TimePoint(Duration::seconds(2).ticks()) &&
                                   span.end <= TimePoint(Duration::seconds(5).ticks()));
  }
  EXPECT_TRUE(some_span_in_partition) << "no episode bracketed inside the cut window";

  // Per node, attributed costs are bounded by the cumulative meters, and
  // the meters agree exactly with the MetricsCollector's independent
  // count (all nodes honest here): every network send was seen by both.
  std::uint64_t tracer_total_msgs = 0;
  std::uint64_t tracer_total_bytes = 0;
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_LE(span_msgs[id], tracer->msgs_sent(id));
    EXPECT_LE(span_auth[id], tracer->auth_snapshot(id).total());
    tracer_total_msgs += tracer->msgs_sent(id);
    tracer_total_bytes += tracer->bytes_sent(id);
  }
  EXPECT_EQ(tracer_total_msgs, cluster.metrics().total_honest_msgs())
      << "tracer and metrics disagree on what was sent";
  EXPECT_EQ(tracer_total_bytes, cluster.metrics().total_honest_bytes());

  // The structured trace carries the episode boundaries.
  const auto started = cluster.trace().of_kind(sim::TraceKind::kSyncStarted);
  const auto completed = cluster.trace().of_kind(sim::TraceKind::kSyncCompleted);
  EXPECT_EQ(completed.size(), spans.size())
      << "one kSyncCompleted trace event per completed span";
  EXPECT_GE(started.size(), completed.size());
}

TEST(SpanAttributionTest, SpansAreDeterministic) {
  Cluster first(partition_options(4243));
  first.run_for(Duration::seconds(6));
  Cluster second(partition_options(4243));
  second.run_for(Duration::seconds(6));

  const auto a = first.sync_tracer()->completed_spans();
  const auto b = second.sync_tracer()->completed_spans();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].from_view, b[i].from_view);
    EXPECT_EQ(a[i].target_view, b[i].target_view);
    EXPECT_EQ(a[i].entered_view, b[i].entered_view);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].msgs_sent, b[i].msgs_sent);
    EXPECT_EQ(a[i].bytes_sent, b[i].bytes_sent);
    EXPECT_EQ(a[i].auth, b[i].auth);
  }
}

TEST(SpanAttributionTest, TracerCanBeDisabled) {
  ScenarioBuilder builder = partition_options(4244);
  ObsSpec spec;
  spec.tracer = false;
  builder.observability(spec);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(1));
  EXPECT_EQ(cluster.sync_tracer(), nullptr);
  // node_status still answers, just without cost meters or spans.
  const NodeStatus status = cluster.node_status(0);
  EXPECT_EQ(status.msgs_sent, 0U);
  EXPECT_FALSE(status.current_sync.has_value());
  EXPECT_FALSE(status.last_sync.has_value());
}

TEST(SpanAttributionTest, SimNodeStatusReadsTheNode) {
  Cluster cluster(partition_options(4245));
  cluster.run_for(Duration::seconds(6));
  for (ProcessId id = 0; id < 4; ++id) {
    const NodeStatus status = cluster.node_status(id);
    EXPECT_EQ(status.node, id);
    EXPECT_EQ(status.view, cluster.node(id).current_view());
    EXPECT_EQ(status.height, cluster.node(id).ledger().size());
    EXPECT_EQ(status.msgs_sent, cluster.sync_tracer()->msgs_sent(id));
    EXPECT_EQ(status.pipeline_queue_depth, 0U) << "no pipeline on the simulator";
    ASSERT_TRUE(status.last_sync.has_value()) << "partition re-sync left no span";
    EXPECT_EQ(status.last_sync->node, id);
  }
  // The render is line-oriented and END-terminated (what the TCP
  // endpoint serves).
  const std::string rendered = render_status(cluster.node_status(0));
  EXPECT_NE(rendered.find("node 0\n"), std::string::npos);
  EXPECT_NE(rendered.find("view "), std::string::npos);
  EXPECT_NE(rendered.find("sync_last "), std::string::npos);
  EXPECT_EQ(rendered.substr(rendered.size() - 4), "END\n");
}

TEST(SpanAttributionTest, TcpSpansCarryCosts) {
  // Over real sockets the spans come from the same pacemaker signal; the
  // assertions are structural (wall-clock runs cannot pin exact counts —
  // but every completed episode still carries its own sends and auth ops).
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(4646)
      .transport_tcp(27210);
  Cluster cluster(builder);
  cluster.run_for(Duration::millis(800));  // wall-clock

  const SyncTracer* tracer = cluster.sync_tracer();
  ASSERT_NE(tracer, nullptr);
  const std::vector<SyncSpan> spans = tracer->completed_spans();
  ASSERT_FALSE(spans.empty()) << "no sync episode completed over TCP";
  for (const SyncSpan& span : spans) {
    ASSERT_LT(span.node, 4U);
    EXPECT_GT(span.entered_view, span.from_view);
    EXPECT_GE(span.msgs_sent, 1U);
    EXPECT_GE(span.auth_ops(), 1U);
    EXPECT_LE(span.msgs_sent, tracer->msgs_sent(span.node));
  }
  // The semantic auth counters ran on the driver threads.
  std::uint64_t total_auth = 0;
  for (ProcessId id = 0; id < 4; ++id) total_auth += tracer->auth_snapshot(id).total();
  EXPECT_GT(total_auth, 0U);
}

}  // namespace
}  // namespace lumiere::obs
