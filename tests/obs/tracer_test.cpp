// SyncTracer unit exactness: spans are counter deltas, so costs injected
// directly between sync-start and view-entry must land in the span — no
// more, no less — regardless of what happened before the episode.
#include "obs/tracer.h"

#include <gtest/gtest.h>

namespace lumiere::obs {
namespace {

TEST(SyncTracerTest, SpanCarriesExactlyTheInjectedCosts) {
  SyncTracer tracer(2);

  // Pre-episode noise on node 0: must NOT be attributed to the span.
  tracer.note_sent(0, 100);
  tracer.auth_counters(0).count_sign();
  tracer.auth_counters(0).count_verify();

  tracer.on_sync_started(0, TimePoint(1000), /*current=*/3, /*target=*/4);

  // The episode's spend: 3 messages of 40 bytes, one share, two share
  // verifies, one aggregate built, one aggregate verify.
  tracer.note_sent(0, 40);
  tracer.note_sent(0, 40);
  tracer.note_sent(0, 40);
  tracer.auth_counters(0).count_share();
  tracer.auth_counters(0).count_share_verify();
  tracer.auth_counters(0).count_share_verify();
  tracer.auth_counters(0).count_aggregate_built();
  tracer.auth_counters(0).count_aggregate_verify();

  const auto span = tracer.on_view_entered(0, TimePoint(2500), /*view=*/5);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->node, 0U);
  EXPECT_EQ(span->from_view, 3);
  EXPECT_EQ(span->target_view, 4);
  EXPECT_EQ(span->entered_view, 5);
  EXPECT_EQ(span->start, TimePoint(1000));
  EXPECT_EQ(span->end, TimePoint(2500));
  EXPECT_EQ(span->duration(), Duration(1500));
  EXPECT_TRUE(span->completed);

  EXPECT_EQ(span->msgs_sent, 3U);
  EXPECT_EQ(span->bytes_sent, 120U);
  EXPECT_EQ(span->auth.shares, 1U);
  EXPECT_EQ(span->auth.share_verifies, 2U);
  EXPECT_EQ(span->auth.aggregates_built, 1U);
  EXPECT_EQ(span->auth.aggregate_verifies, 1U);
  EXPECT_EQ(span->auth.signs, 0U) << "pre-episode sign leaked into the span";
  EXPECT_EQ(span->auth.verifies, 0U) << "pre-episode verify leaked into the span";
  EXPECT_EQ(span->auth_ops(), 5U);

  // Cumulative meters still carry everything.
  EXPECT_EQ(tracer.msgs_sent(0), 4U);
  EXPECT_EQ(tracer.bytes_sent(0), 220U);
  EXPECT_EQ(tracer.auth_snapshot(0).total(), 7U);

  // Node 1 saw nothing.
  EXPECT_EQ(tracer.msgs_sent(1), 0U);
  EXPECT_FALSE(tracer.last_span(1).has_value());
}

TEST(SyncTracerTest, PassiveViewEntryYieldsNoSpan) {
  SyncTracer tracer(1);
  tracer.note_sent(0, 10);
  EXPECT_FALSE(tracer.on_view_entered(0, TimePoint(5), 1).has_value());
  EXPECT_EQ(tracer.completed_count(), 0U);
  EXPECT_FALSE(tracer.last_span(0).has_value());
}

TEST(SyncTracerTest, FirstStartWinsWhileOpen) {
  SyncTracer tracer(1);
  tracer.on_sync_started(0, TimePoint(100), 1, 2);
  tracer.note_sent(0, 8);
  // The pacemaker escalates its target mid-episode: same struggle, same
  // span — identity fields keep the first start.
  tracer.on_sync_started(0, TimePoint(200), 1, 3);
  tracer.note_sent(0, 8);
  const auto span = tracer.on_view_entered(0, TimePoint(300), 3);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->start, TimePoint(100));
  EXPECT_EQ(span->target_view, 2);
  EXPECT_EQ(span->entered_view, 3);
  EXPECT_EQ(span->msgs_sent, 2U);

  // The episode is closed: a fresh start opens a fresh span.
  tracer.on_sync_started(0, TimePoint(400), 3, 4);
  const auto next = tracer.on_view_entered(0, TimePoint(450), 4);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->start, TimePoint(400));
  EXPECT_EQ(next->msgs_sent, 0U);
  EXPECT_EQ(tracer.completed_count(), 2U);
}

TEST(SyncTracerTest, OpenSpanReportsLiveCosts) {
  SyncTracer tracer(1);
  EXPECT_FALSE(tracer.open_span(0, TimePoint(0)).has_value());
  tracer.on_sync_started(0, TimePoint(10), 0, 1);
  tracer.note_sent(0, 44);
  tracer.auth_counters(0).count_share();

  const auto live = tracer.open_span(0, TimePoint(70));
  ASSERT_TRUE(live.has_value());
  EXPECT_FALSE(live->completed);
  EXPECT_EQ(live->msgs_sent, 1U);
  EXPECT_EQ(live->bytes_sent, 44U);
  EXPECT_EQ(live->auth.shares, 1U);
  EXPECT_EQ(live->duration(), Duration(60));

  // A caller with no safe clock (TCP status thread) passes origin: the
  // duration clamps to zero instead of going negative.
  const auto clamped = tracer.open_span(0, TimePoint::origin());
  ASSERT_TRUE(clamped.has_value());
  EXPECT_EQ(clamped->duration(), Duration::zero());
  EXPECT_EQ(clamped->msgs_sent, 1U);
}

TEST(SyncTracerTest, CompletedRingIsBoundedAndCountsDrops) {
  SyncTracer tracer(1, /*max_spans=*/2);
  for (View v = 0; v < 5; ++v) {
    tracer.on_sync_started(0, TimePoint(10 * v), v, v + 1);
    tracer.on_view_entered(0, TimePoint(10 * v + 5), v + 1);
  }
  EXPECT_EQ(tracer.completed_count(), 2U);
  EXPECT_EQ(tracer.dropped_spans(), 3U);
  const auto spans = tracer.completed_spans();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans.front().entered_view, 4);  // oldest survivor
  EXPECT_EQ(spans.back().entered_view, 5);
  // last_span is unaffected by ring eviction.
  ASSERT_TRUE(tracer.last_span(0).has_value());
  EXPECT_EQ(tracer.last_span(0)->entered_view, 5);
}

TEST(SyncTracerTest, UnboundedRingKeepsEverySpan) {
  SyncTracer tracer(1, /*max_spans=*/0);
  for (View v = 0; v < 100; ++v) {
    tracer.on_sync_started(0, TimePoint(10 * v), v, v + 1);
    tracer.on_view_entered(0, TimePoint(10 * v + 5), v + 1);
  }
  EXPECT_EQ(tracer.completed_count(), 100U);
  EXPECT_EQ(tracer.dropped_spans(), 0U);
}

}  // namespace
}  // namespace lumiere::obs
