// Live status endpoints: a raw-socket client speaks the line protocol to
// a running TCP cluster, and the builder rejects the configurations the
// endpoints cannot serve.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/status_server.h"
#include "runtime/cluster.h"

namespace lumiere::obs {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

// Port block disjoint from the transport suite (25560-26000) and the
// span-attribution TCP test (27210).
constexpr std::uint16_t kTcpBase = 27300;
constexpr std::uint16_t kStatusBase = 27340;

class StatusClient {
 public:
  explicit StatusClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("connect() failed");
    }
  }
  ~StatusClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  StatusClient(const StatusClient&) = delete;
  StatusClient& operator=(const StatusClient&) = delete;

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// Raw bytes, no newline appended — for mid-line disconnect tests.
  void send_raw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0), static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until `terminator` appears at the start of a line (or the peer
  /// closes). Returns everything read.
  std::string read_until(const std::string& terminator) {
    std::string out;
    char buf[512];
    while (true) {
      const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) break;
      out.append(buf, static_cast<std::size_t>(got));
      std::istringstream lines(out);
      for (std::string line; std::getline(lines, line);) {
        if (line == terminator) return out;
      }
    }
    return out;
  }

  [[nodiscard]] bool peer_closed() {
    char byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
};

std::map<std::string, std::string> parse_status(const std::string& reply) {
  std::map<std::string, std::string> fields;
  std::istringstream lines(reply);
  for (std::string line; std::getline(lines, line);) {
    if (line == "END" || line.empty()) continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed status line: " << line;
      continue;
    }
    fields[line.substr(0, space)] = line.substr(space + 1);
  }
  return fields;
}

TEST(StatusEndpointTest, ServesLiveStatusOverTcp) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(2726)
      .transport_tcp(kTcpBase);
  ObsSpec spec;
  spec.status_base_port = kStatusBase;
  builder.observability(spec);
  Cluster cluster(builder);

  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.status_port(id), kStatusBase + id);
  }

  // Endpoints answer before the protocol has run a single step.
  {
    StatusClient client(kStatusBase);
    client.send_line("PING");
    EXPECT_EQ(client.read_until("PONG"), "PONG\n");
  }

  cluster.run_for(Duration::millis(800));  // wall-clock

  for (ProcessId id = 0; id < 4; ++id) {
    StatusClient client(static_cast<std::uint16_t>(kStatusBase + id));
    client.send_line("STATUS");
    const std::string reply = client.read_until("END");
    auto fields = parse_status(reply);
    ASSERT_TRUE(fields.count("node")) << "no node line in reply:\n" << reply;
    EXPECT_EQ(fields.at("node"), std::to_string(id));
    EXPECT_GT(std::stoll(fields.at("view")), 0) << "node " << id << " made no progress";
    EXPECT_GT(std::stoull(fields.at("msgs_sent")), 0U);
    EXPECT_GT(std::stoull(fields.at("auth_ops")), 0U);
    // The endpoint serves between run_for slices too — same thread-safe
    // snapshot path.
    client.send_line("STATUS");
    EXPECT_NE(client.read_until("END").find("\nEND\n"), std::string::npos);
  }

  // Unknown commands get a diagnostic, QUIT hangs up.
  {
    StatusClient client(kStatusBase + 1);
    client.send_line("FROBNICATE");
    EXPECT_EQ(client.read_until("ERR unknown command"), "ERR unknown command\n");
    client.send_line("QUIT");
    EXPECT_TRUE(client.peer_closed());
  }

  // The board kept up with the nodes: the snapshot agrees with the
  // harness-side view of the same counters.
  for (ProcessId id = 0; id < 4; ++id) {
    const NodeStatus status = cluster.node_status(id);
    EXPECT_GT(status.view, 0);
    EXPECT_EQ(status.msgs_sent, cluster.sync_tracer()->msgs_sent(id));
  }
}

TEST(StatusEndpointTest, StandaloneServerLifecycle) {
  // The server is independent of the protocol stack: a bare snapshot
  // closure is enough, and the port frees on destruction.
  constexpr std::uint16_t kPort = kStatusBase + 20;
  {
    StatusServer server(kPort, [] {
      NodeStatus status;
      status.node = 7;
      status.view = 42;
      return status;
    });
    EXPECT_EQ(server.port(), kPort);
    StatusClient client(kPort);
    client.send_line("STATUS");
    const std::string reply = client.read_until("END");
    EXPECT_NE(reply.find("node 7\n"), std::string::npos);
    EXPECT_NE(reply.find("view 42\n"), std::string::npos);
  }
  // Rebind after shutdown must succeed (no lingering listener).
  StatusServer again(kPort, [] { return NodeStatus{}; });
  EXPECT_EQ(again.port(), kPort);
}

TEST(StatusEndpointTest, ServesAdminFieldsAndAuthFlow) {
  // The soak orchestrator's view of a replica: the PR 9 STATUS fields and
  // the AUTH gate in front of the admin verbs, against a fake submit hook
  // (no protocol stack needed).
  constexpr std::uint16_t kPort = kStatusBase + 24;
  StatusServer::AdminHooks hooks;
  hooks.token = "sekrit";
  hooks.submit = [](const AdminCommand& command) -> std::optional<std::string> {
    return std::string("applied ") + to_string(command.kind);
  };
  StatusServer server(
      kPort,
      [] {
        NodeStatus status;
        status.node = 3;
        status.last_commit_height = 41;
        status.ever_byzantine = true;
        return status;
      },
      std::move(hooks));

  StatusClient client(kPort);
  client.send_line("STATUS");
  const auto fields = parse_status(client.read_until("END"));
  EXPECT_EQ(fields.at("last_commit_height"), "41");
  EXPECT_EQ(fields.at("ever_byzantine"), "1");

  // Admin verbs are locked until this session authenticates.
  client.send_line("ISOLATE");
  EXPECT_EQ(client.read_until("ERR auth required"), "ERR auth required\n");
  client.send_line("AUTH wrong");
  EXPECT_EQ(client.read_until("ERR bad token"), "ERR bad token\n");
  client.send_line("AUTH sekrit");
  EXPECT_EQ(client.read_until("OK"), "OK\n");
  client.send_line("DROP 1 0.5");
  EXPECT_EQ(client.read_until("applied DROP"), "applied DROP\n");
  client.send_line("DROP 1 nonsense");
  EXPECT_EQ(client.read_until("ERR DROP needs <peer> <probability>"),
            "ERR DROP needs <peer> <probability>\n");

  // A second session does not inherit the first one's authentication.
  StatusClient second(kPort);
  second.send_line("HEAL");
  EXPECT_EQ(second.read_until("ERR auth required"), "ERR auth required\n");
}

TEST(StatusEndpointTest, AdminDisabledWithoutHooks) {
  constexpr std::uint16_t kPort = kStatusBase + 26;
  StatusServer server(kPort, [] { return NodeStatus{}; });
  StatusClient client(kPort);
  client.send_line("AUTH anything");
  EXPECT_EQ(client.read_until("ERR admin disabled"), "ERR admin disabled\n");
  client.send_line("LEDGER");
  EXPECT_EQ(client.read_until("ERR admin disabled"), "ERR admin disabled\n");
}

TEST(StatusEndpointTest, SurvivesMidLineDisconnectAndHeldSockets) {
  constexpr std::uint16_t kPort = kStatusBase + 28;
  std::unique_ptr<StatusClient> holder;  // outlives the server below
  {
    StatusServer server(kPort, [] { return NodeStatus{}; });
    {
      // Client dies mid-line: no newline ever arrives. The session must
      // notice the hangup rather than wait for a terminator.
      StatusClient partial(kPort);
      partial.send_raw("STATU");  // no newline, then close
    }
    // The server still serves fresh sessions afterwards.
    StatusClient healthy(kPort);
    healthy.send_line("PING");
    EXPECT_EQ(healthy.read_until("PONG"), "PONG\n");

    // This session holds its socket open across server shutdown; the
    // destructor must close it out rather than hang (the gtest timeout is
    // the failure mode).
    holder = std::make_unique<StatusClient>(kPort);
  }
  EXPECT_TRUE(holder->peer_closed()) << "shutdown must hang up held sessions";
  // Port frees even though a client never hung up on its own.
  StatusServer again(kPort, [] { return NodeStatus{}; });
  EXPECT_EQ(again.port(), kPort);
}

TEST(StatusEndpointTest, BuilderRejectsStatusOnSimTransport) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(1);
  ObsSpec spec;
  spec.status_base_port = kStatusBase;
  builder.observability(spec);
  EXPECT_THROW(Cluster{builder}, std::invalid_argument);
}

TEST(StatusEndpointTest, BuilderRejectsStatusWithoutTracer) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(1)
      .transport_tcp(kTcpBase);
  ObsSpec spec;
  spec.tracer = false;
  spec.status_base_port = kStatusBase;
  builder.observability(spec);
  EXPECT_THROW(Cluster{builder}, std::invalid_argument);
}

}  // namespace
}  // namespace lumiere::obs
