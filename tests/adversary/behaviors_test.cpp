#include "adversary/behaviors.h"

#include <gtest/gtest.h>

#include <memory>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "core/epoch_math.h"
#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::adversary {
namespace {

std::unique_ptr<crypto::Authenticator> test_auth() {
  return crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
}

consensus::ProposalMsg sample_proposal() {
  const auto genesis = consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  return consensus::ProposalMsg(
      consensus::Block(consensus::Block::genesis().hash(), 1, {}, genesis));
}

TEST(BehaviorTest, HonestAllowsEverything) {
  HonestBehavior honest;
  EXPECT_TRUE(honest.allow_send(TimePoint(0), 1, sample_proposal()));
}

TEST(BehaviorTest, CrashCutsOffAtTime) {
  CrashBehavior crash(TimePoint(100));
  EXPECT_TRUE(crash.allow_send(TimePoint(99), 1, sample_proposal()));
  EXPECT_FALSE(crash.allow_send(TimePoint(100), 1, sample_proposal()));
  EXPECT_FALSE(crash.allow_send(TimePoint(500), 1, sample_proposal()));
}

TEST(BehaviorTest, MuteDropsAll) {
  MuteBehavior mute;
  EXPECT_FALSE(mute.allow_send(TimePoint(0), 1, sample_proposal()));
}

TEST(BehaviorTest, SilentLeaderDropsLeaderDutiesOnly) {
  SilentLeaderBehavior silent;
  const auto auth = test_auth();
  EXPECT_FALSE(silent.allow_send(TimePoint(0), 1, sample_proposal()));

  const auto vote_share = crypto::threshold_share(
      auth->signer_for(0), consensus::QuorumCert::statement(1, crypto::Sha256::hash("b")));
  const consensus::VoteMsg vote(1, crypto::Sha256::hash("b"), vote_share);
  EXPECT_TRUE(silent.allow_send(TimePoint(0), 1, vote)) << "replica duties continue";

  const auto view_share =
      crypto::threshold_share(auth->signer_for(0), pacemaker::view_msg_statement(2));
  const pacemaker::ViewMsg vm(2, view_share);
  EXPECT_TRUE(silent.allow_send(TimePoint(0), 1, vm));
}

TEST(BehaviorTest, QcWithholderDropsOnlyQcs) {
  QcWithholderBehavior withholder;
  EXPECT_TRUE(withholder.allow_send(TimePoint(0), 1, sample_proposal()));
  const auto genesis = consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  EXPECT_FALSE(withholder.allow_send(TimePoint(0), 1, consensus::QcMsg(genesis)));
}

TEST(BehaviorTest, FactoryAssignsByzantineSet) {
  const auto factory = byzantine_set(
      {1, 3}, [](ProcessId) { return std::make_unique<MuteBehavior>(); });
  EXPECT_STREQ(factory(0)->name(), "honest");
  EXPECT_STREQ(factory(1)->name(), "mute");
  EXPECT_STREQ(factory(2)->name(), "honest");
  EXPECT_STREQ(factory(3)->name(), "mute");
}

TEST(BehaviorIntegrationTest, EpochStormCannotForceHeavySync) {
  // f Byzantine epoch-stormers alone cannot form a TC (f+1 signers), so
  // Lumiere's steady state stays quiet and live despite the storm.
  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
      .pacemaker("lumiere")
      .seed(23)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  const core::EpochMath math_probe(4, Duration::millis(100));
  builder.behaviors(byzantine_set({0}, [&](ProcessId) -> std::unique_ptr<Behavior> {
    return std::make_unique<EpochStormBehavior>(math_probe.views_per_epoch());
  }));
  runtime::Cluster cluster(builder);
  cluster.run_for(Duration::seconds(40));
  EXPECT_GE(cluster.metrics().decisions().size(), 20U);
  // The storm is visible on the wire (Byzantine traffic is free for the
  // adversary) but honest processors did not join in after bootstrap.
  for (const ProcessId id : cluster.honest_ids()) {
    const auto& pm = static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
    EXPECT_LE(pm.epoch_msgs_sent(), 1U) << "storm tricked node " << id;
  }
}

}  // namespace
}  // namespace lumiere::adversary
