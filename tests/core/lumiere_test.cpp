// Lumiere behavior tests: bootstrap, steady state, the success criterion
// turning heavy synchronization off, responsiveness.
#include "core/lumiere.h"

#include <gtest/gtest.h>

#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder lumiere_options(std::uint32_t n, Duration delta_actual) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  options.seed(31);
  return options;
}

const core::LumierePacemaker& lumiere_of(const Cluster& cluster, ProcessId id) {
  return static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
}

TEST(LumiereTest, GammaDefault) {
  Cluster cluster(lumiere_options(4, Duration::millis(1)));
  EXPECT_EQ(lumiere_of(cluster, 0).gamma(), Duration::millis(100));  // 2(x+2)D, x=3
}

TEST(LumiereTest, BootstrapsThroughHeavySync) {
  // At start nobody has seen success(-1): everyone parks at view 0,
  // waits Delta, exchanges epoch-view messages and enters via EC.
  Cluster cluster(lumiere_options(4, Duration::millis(1)));
  cluster.run_for(Duration::millis(60));
  EXPECT_GT(cluster.metrics().count_for_type(pacemaker::kEpochViewMsg), 0U);
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_GE(cluster.node(id).current_view(), 0) << "node " << id << " failed to bootstrap";
  }
}

TEST(LumiereTest, DecisionsFlowAndViewsAdvance) {
  Cluster cluster(lumiere_options(4, Duration::millis(1)));
  cluster.run_for(Duration::seconds(30));
  EXPECT_GE(cluster.metrics().decisions().size(), 50U);
  EXPECT_GT(cluster.min_honest_view(), 10);
}

TEST(LumiereTest, SuccessCriterionSilencesEpochSync) {
  // After the first successful epoch, no honest processor should send
  // epoch-view messages again (Lemma 5.15 (2)).
  ScenarioBuilder options = lumiere_options(4, Duration::millis(1));
  Cluster cluster(options);
  const auto& math = lumiere_of(cluster, 0).math();
  // Run long enough to cross several epoch boundaries. Epoch 0 has 40
  // views x Gamma = 100ms, but responsive progress crosses it far faster.
  cluster.run_for(Duration::seconds(60));
  ASSERT_GE(lumiere_of(cluster, 0).current_epoch(), 2)
      << "test needs to cross at least two epoch boundaries";
  // Epoch-view messages may appear only for the bootstrap boundary
  // (view 0): every later boundary must ride the success criterion.
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_LE(lumiere_of(cluster, id).epoch_msgs_sent(), 1U)
        << "node " << id << " kept paying heavy synchronization";
  }
  // And the success flag is genuinely on for completed epochs.
  EXPECT_TRUE(lumiere_of(cluster, 0).success_tracker().success(0));
  (void)math;
}

TEST(LumiereTest, ResponsiveWhenNetworkFast) {
  // Steady-state inter-decision gaps track delta (x * delta per view
  // pair), not Gamma.
  Cluster cluster(lumiere_options(4, Duration::micros(200)));
  cluster.run_for(Duration::seconds(20));
  const auto gap = cluster.metrics().max_decision_gap(TimePoint::origin(), /*warmup=*/30);
  ASSERT_TRUE(gap.has_value());
  EXPECT_LT(*gap, Duration::millis(100)) << "gaps must beat one Gamma once warmed up";
}

TEST(LumiereTest, QcDeadlineEnforced) {
  // With the deadline on, every QC is produced within Gamma/2 - 2 Delta
  // of its anchor; we verify indirectly: decisions still flow (the
  // deadline must not strangle liveness on a healthy network).
  ScenarioBuilder options = lumiere_options(4, Duration::millis(1));
  options.lumiere(runtime::LumiereOptions{/*enforce_qc_deadline=*/true, /*delta_wait=*/true});
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));
  EXPECT_GE(cluster.metrics().decisions().size(), 15U);
}

TEST(LumiereTest, AblationWithoutDeadlineStillLive) {
  ScenarioBuilder options = lumiere_options(4, Duration::millis(1));
  options.lumiere(runtime::LumiereOptions{/*enforce_qc_deadline=*/false, /*delta_wait=*/true});
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));
  EXPECT_GE(cluster.metrics().decisions().size(), 15U);
}

TEST(LumiereTest, StaggeredJoinsStillSynchronize) {
  // Processors join with lc = 0 at arbitrary times before GST
  // (Section 2). GST strikes after the last join; Lumiere must reach
  // infinitely many decisions after GST.
  ScenarioBuilder options = lumiere_options(4, Duration::millis(2));
  const TimePoint gst(Duration::millis(600).ticks());
  options.join_stagger(Duration::millis(500));
  options.gst(gst);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));
  const auto first = cluster.metrics().latency_to_first_decision(gst);
  ASSERT_TRUE(first.has_value()) << "no decision after GST";
  EXPECT_GE(cluster.metrics().decisions().size(), 20U);
}

TEST(LumiereTest, SurvivesPreGstChaos) {
  ScenarioBuilder options = lumiere_options(7, Duration::millis(1));
  const TimePoint gst(Duration::seconds(1).ticks());
  options.gst(gst);
  options.join_stagger(Duration::millis(300));
  options.delay(std::make_shared<sim::PreGstChaosDelay>(
      gst, Duration::micros(500), Duration::millis(2), Duration::seconds(2)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(90));
  const auto first = cluster.metrics().latency_to_first_decision(gst);
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
}

/// Sweep across sizes: liveness and (post-bootstrap) quiet boundaries.
class LumiereSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LumiereSizeSweep, LiveAcrossSizes) {
  Cluster cluster(lumiere_options(GetParam(), Duration::millis(1)));
  cluster.run_for(Duration::seconds(40));
  EXPECT_GE(cluster.metrics().decisions().size(), 20U);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LumiereSizeSweep, ::testing::Values(4U, 7U, 10U, 13U));

}  // namespace
}  // namespace lumiere::runtime
