#include "core/success_tracker.h"

#include <gtest/gtest.h>

#include <vector>

namespace lumiere::core {
namespace {

class SuccessTrackerTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;  // f = 1, quorum = 3
  ProtocolParams params_ = ProtocolParams::for_n(kN, Duration::millis(10));
  EpochMath math_{kN, Duration::millis(10)};
  std::vector<Epoch> flips_;

  SuccessTracker make_tracker() {
    return SuccessTracker(
        params_, &math_,
        // Deterministic leader map: views pair up, leaders rotate.
        [](View v) { return static_cast<ProcessId>((v / 2) % kN); },
        [this](Epoch e) { flips_.push_back(e); });
  }

  /// Records QCs for all 10 views led by `leader` in epoch 0 under the
  /// rotation above (slots leader, leader+4, leader+8, ... pairs).
  void complete_leader(SuccessTracker& tracker, ProcessId leader) {
    for (View v = 0; v < math_.views_per_epoch(); ++v) {
      if ((v / 2) % kN == leader) tracker.record_qc(v);
    }
  }
};

TEST_F(SuccessTrackerTest, InitiallyZeroEverywhere) {
  SuccessTracker tracker = make_tracker();
  EXPECT_FALSE(tracker.success(-1));
  EXPECT_FALSE(tracker.success(0));
  EXPECT_FALSE(tracker.success(100));
}

TEST_F(SuccessTrackerTest, FlipsAtQuorumOfCompleteLeaders) {
  SuccessTracker tracker = make_tracker();
  complete_leader(tracker, 0);
  EXPECT_FALSE(tracker.success(0));
  EXPECT_EQ(tracker.leaders_done(0), 1U);
  complete_leader(tracker, 1);
  EXPECT_FALSE(tracker.success(0));
  complete_leader(tracker, 2);
  EXPECT_TRUE(tracker.success(0)) << "2f+1 = 3 complete leaders flip success";
  ASSERT_EQ(flips_.size(), 1U);
  EXPECT_EQ(flips_[0], 0);
}

TEST_F(SuccessTrackerTest, NineOutOfTenDoesNotCount) {
  SuccessTracker tracker = make_tracker();
  for (ProcessId leader = 0; leader < 3; ++leader) {
    int recorded = 0;
    for (View v = 0; v < math_.views_per_epoch() && recorded < 9; ++v) {
      if ((v / 2) % kN == leader) {
        tracker.record_qc(v);
        ++recorded;
      }
    }
  }
  EXPECT_FALSE(tracker.success(0)) << "leaders need all 10 QCs, 9 is not enough";
  EXPECT_EQ(tracker.leaders_done(0), 0U);
}

TEST_F(SuccessTrackerTest, DuplicateViewsIgnored) {
  SuccessTracker tracker = make_tracker();
  for (int rep = 0; rep < 20; ++rep) tracker.record_qc(0);
  EXPECT_EQ(tracker.leaders_done(0), 0U) << "one view's QC counts once";
}

TEST_F(SuccessTrackerTest, EpochsIndependent) {
  SuccessTracker tracker = make_tracker();
  // Complete epoch 1's quorum; epoch 0 stays unsatisfied.
  const View base = math_.epoch_first_view(1);
  for (ProcessId leader = 0; leader < 3; ++leader) {
    for (View v = base; v < math_.epoch_first_view(2); ++v) {
      if ((v / 2) % kN == leader) tracker.record_qc(v);
    }
  }
  EXPECT_TRUE(tracker.success(1));
  EXPECT_FALSE(tracker.success(0));
}

TEST_F(SuccessTrackerTest, FlipFiresExactlyOnce) {
  SuccessTracker tracker = make_tracker();
  for (ProcessId leader = 0; leader < 4; ++leader) complete_leader(tracker, leader);
  EXPECT_TRUE(tracker.success(0));
  EXPECT_EQ(flips_.size(), 1U) << "the callback must not re-fire on extra QCs";
}

TEST_F(SuccessTrackerTest, NegativeViewsIgnored) {
  SuccessTracker tracker = make_tracker();
  tracker.record_qc(-1);
  EXPECT_FALSE(tracker.success(-1));
  EXPECT_TRUE(flips_.empty());
}

}  // namespace
}  // namespace lumiere::core
