#include "core/epoch_math.h"

#include <gtest/gtest.h>

namespace lumiere::core {
namespace {

TEST(EpochMathTest, Layout) {
  const EpochMath math(4, Duration::millis(100));
  EXPECT_EQ(math.views_per_epoch(), 40);  // 10n
  EXPECT_EQ(math.views_per_segment(), 8);
  EXPECT_EQ(math.epoch_first_view(0), 0);
  EXPECT_EQ(math.epoch_first_view(3), 120);
  EXPECT_EQ(math.epoch_of(0), 0);
  EXPECT_EQ(math.epoch_of(39), 0);
  EXPECT_EQ(math.epoch_of(40), 1);
  EXPECT_EQ(math.epoch_of(-1), -1);
}

TEST(EpochMathTest, EpochViews) {
  const EpochMath math(4, Duration::millis(100));
  EXPECT_TRUE(math.is_epoch_view(0));
  EXPECT_TRUE(math.is_epoch_view(40));
  EXPECT_TRUE(math.is_epoch_view(80));
  EXPECT_FALSE(math.is_epoch_view(1));
  EXPECT_FALSE(math.is_epoch_view(39));
  EXPECT_FALSE(math.is_epoch_view(-1));
}

TEST(EpochMathTest, InitialViews) {
  EXPECT_TRUE(EpochMath::is_initial(0));
  EXPECT_FALSE(EpochMath::is_initial(1));
  EXPECT_TRUE(EpochMath::is_initial(38));
  EXPECT_FALSE(EpochMath::is_initial(-1)) << "view -1 is not initial";
}

TEST(EpochMathTest, ViewTimesAndInverse) {
  const EpochMath math(4, Duration::millis(100));
  EXPECT_EQ(math.view_time(0), Duration::zero());
  EXPECT_EQ(math.view_time(7), Duration::millis(700));
  EXPECT_EQ(math.view_at(Duration::millis(700)), 7);
  EXPECT_EQ(math.view_at(Duration::millis(750)), 7);
  EXPECT_EQ(math.view_at(Duration::millis(799)), 7);
  EXPECT_TRUE(math.at_boundary(Duration::millis(700)));
  EXPECT_FALSE(math.at_boundary(Duration::millis(701)));
}

TEST(EpochMathTest, SegmentsAlignWithEpochs) {
  const EpochMath math(7, Duration::millis(10));
  // 5 segments per epoch, each 2n views.
  EXPECT_EQ(math.segment_of(0), 0);
  EXPECT_EQ(math.segment_of(13), 0);
  EXPECT_EQ(math.segment_of(14), 1);
  EXPECT_EQ(math.segment_of(math.epoch_first_view(1)), EpochMath::kSegmentsPerEpoch);
  EXPECT_EQ(math.segment_of(math.epoch_first_view(1)) % EpochMath::kSegmentsPerEpoch, 0);
}

TEST(EpochMathTest, EachLeaderGetsTenViewsPerEpoch) {
  EXPECT_EQ(EpochMath::kViewsPerLeaderPerEpoch, 10);
  const EpochMath math(4, Duration::millis(10));
  // views_per_epoch / n == views per leader (each slot pairs two views).
  EXPECT_EQ(math.views_per_epoch() / 4, EpochMath::kViewsPerLeaderPerEpoch);
}

}  // namespace
}  // namespace lumiere::core
