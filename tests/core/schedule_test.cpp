#include "core/reverse_permutation_schedule.h"

#include <gtest/gtest.h>

#include <map>

#include "core/epoch_math.h"

namespace lumiere::core {
namespace {

TEST(ReversePermutationScheduleTest, LeaderPairsShareTenure) {
  const ReversePermutationSchedule schedule(7, 42);
  for (View v = 0; v < 200; v += 2) {
    EXPECT_EQ(schedule.leader_of(v), schedule.leader_of(v + 1));
  }
}

TEST(ReversePermutationScheduleTest, EachSegmentIsAPermutation) {
  const ReversePermutationSchedule schedule(7, 42);
  const EpochMath math(7, Duration::millis(10));
  for (std::int64_t segment = 0; segment < 12; ++segment) {
    std::map<ProcessId, int> counts;
    const View base = segment * math.views_per_segment();
    for (View v = base; v < base + math.views_per_segment(); ++v) {
      ++counts[schedule.leader_of(v)];
    }
    EXPECT_EQ(counts.size(), 7U) << "segment " << segment;
    for (const auto& [leader, count] : counts) {
      EXPECT_EQ(count, 2) << "leader " << leader << " in segment " << segment;
    }
  }
}

TEST(ReversePermutationScheduleTest, EpochBoundaryBridging) {
  // The paper's footnote: the last leader of epoch e is the first leader
  // of epoch e+1 (Lemma 5.13 depends on it).
  for (const std::uint32_t n : {4U, 7U, 13U}) {
    const ReversePermutationSchedule schedule(n, 99);
    const EpochMath math(n, Duration::millis(10));
    for (Epoch e = 0; e < 6; ++e) {
      const View last = math.epoch_first_view(e + 1) - 1;
      const View first_next = math.epoch_first_view(e + 1);
      EXPECT_EQ(schedule.leader_of(last), schedule.leader_of(first_next))
          << "epoch " << e << " -> " << e + 1 << " n=" << n;
    }
  }
}

TEST(ReversePermutationScheduleTest, EachLeaderLeadsTenViewsPerEpoch) {
  const std::uint32_t n = 5;
  const ReversePermutationSchedule schedule(n, 7);
  const EpochMath math(n, Duration::millis(10));
  for (Epoch e = 0; e < 3; ++e) {
    std::map<ProcessId, int> counts;
    for (View v = math.epoch_first_view(e); v < math.epoch_first_view(e + 1); ++v) {
      ++counts[schedule.leader_of(v)];
    }
    for (const auto& [leader, count] : counts) {
      EXPECT_EQ(count, EpochMath::kViewsPerLeaderPerEpoch)
          << "leader " << leader << " epoch " << e;
    }
  }
}

TEST(ReversePermutationScheduleTest, DeterministicInSeed) {
  const ReversePermutationSchedule a(7, 1);
  const ReversePermutationSchedule b(7, 1);
  const ReversePermutationSchedule c(7, 2);
  bool differs = false;
  for (View v = 0; v < 300; ++v) {
    EXPECT_EQ(a.leader_of(v), b.leader_of(v));
    differs |= a.leader_of(v) != c.leader_of(v);
  }
  EXPECT_TRUE(differs);
}

TEST(ReversePermutationScheduleTest, MidEpochSegmentsVary) {
  // Within an epoch the permutations should not all coincide (they are
  // drawn independently) — a smoke check on randomization quality.
  const ReversePermutationSchedule schedule(16, 3);
  const auto& s0 = schedule.permutation_for(0);
  const auto& s1 = schedule.permutation_for(1);
  EXPECT_NE(s0, s1);
}

}  // namespace
}  // namespace lumiere::core
