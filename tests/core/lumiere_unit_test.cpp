// Unit-level tests of LumierePacemaker's Algorithm 1 mechanics via direct
// message injection (single instance; the other processors are played by
// the test through the shared PKI).
#include "core/lumiere.h"

#include <gtest/gtest.h>

#include "testutil/pacemaker_harness.h"

namespace lumiere::core {
namespace {

using testutil::PacemakerHarness;

class LumiereUnitTest : public ::testing::Test {
 protected:
  // n = 4: f = 1, TC threshold = 2, EC threshold = 3, epoch = 40 views,
  // Gamma = 2(x+2)*Delta = 100ms with x = 3, Delta = 10ms.
  LumiereUnitTest() : harness_(4, /*self=*/0) {
    LumierePacemaker::Options options;
    options.schedule_seed = 5;
    pm_ = std::make_unique<LumierePacemaker>(harness_.params(), harness_.self(),
                                             harness_.signer(), harness_.wiring(), options);
    harness_.attach(pm_.get());
  }

  void start() {
    pm_->start();
    harness_.settle();
  }

  PacemakerHarness harness_;
  std::unique_ptr<LumierePacemaker> pm_;
};

TEST_F(LumiereUnitTest, BootstrapParksAtViewZeroAndSendsEpochMsgAfterDelta) {
  start();
  // lc == c_0 == 0 and success(-1) == 0: park (pause), no epoch message
  // before the Delta-wait expires (Algorithm 1 lines 9-11).
  EXPECT_TRUE(pm_->parked());
  EXPECT_TRUE(harness_.clock().paused());
  EXPECT_EQ(harness_.sent_count(pacemaker::kEpochViewMsg), 0U);
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));  // + Delta
  EXPECT_EQ(harness_.sent_count(pacemaker::kEpochViewMsg), 1U);
  EXPECT_EQ(pm_->current_view(), -1);
}

TEST_F(LumiereUnitTest, EcEntryAfterQuorumOfEpochMessages) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  // Our own share arrived via broadcast self-delivery; two more make an
  // EC (2f+1 = 3). The first foreign share forms a TC (f+1 = 2) first.
  harness_.inject_epoch_msg(1, 0);
  EXPECT_TRUE(pm_->parked()) << "TC for the parked view itself does not unpark";
  harness_.inject_epoch_msg(2, 0);
  harness_.settle();
  EXPECT_FALSE(pm_->parked());
  EXPECT_FALSE(harness_.clock().paused());
  EXPECT_EQ(pm_->current_view(), 0);
  EXPECT_EQ(pm_->current_epoch(), 0);
  // Entering the initial (epoch) view sends a view message to lead(0).
  EXPECT_GE(harness_.sent_count(pacemaker::kViewMsg), 1U);
}

TEST_F(LumiereUnitTest, QcForViewAtOrAboveUnparks) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  EXPECT_TRUE(pm_->parked());
  harness_.inject_qc(0);  // QC for the parked view releases the pause
  harness_.settle();
  EXPECT_FALSE(pm_->parked());
  // Line 44/48: QC for 0 bumps lc to c_1 and enters non-initial view 1.
  EXPECT_EQ(pm_->current_view(), 1);
  EXPECT_EQ(harness_.clock().reading(), Duration::millis(100));
}

TEST_F(LumiereUnitTest, VcAdmitsDirectEntry) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  harness_.inject_vc(2);  // VC for initial view 2 (> parked view 0)
  harness_.settle();
  EXPECT_FALSE(pm_->parked());
  EXPECT_EQ(pm_->current_view(), 2);
  // lc bumped to c_2 = 200ms (line 39).
  EXPECT_EQ(harness_.clock().reading(), Duration::millis(200));
  // Catch-up view messages for skipped initial views [view, 2) = {0}
  // plus the entry message for 2 itself.
  EXPECT_GE(harness_.sent_count(pacemaker::kViewMsg), 2U);
}

TEST_F(LumiereUnitTest, TcForHigherEpochBumpsAndEchoes) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  const View next_epoch_view = pm_->math().epoch_first_view(1);  // view 40
  // f+1 = 2 epoch-view messages for epoch 1's boundary constitute a TC.
  // Inspect the state *synchronously* (before the echoed share
  // self-delivers): line 16-21 bumped lc to c_40, moved to view 39
  // (= V(1) - 1), echoed an epoch-view message, and re-parked.
  harness_.inject_epoch_msg(1, next_epoch_view);
  harness_.inject_epoch_msg(2, next_epoch_view);
  EXPECT_EQ(pm_->current_view(), next_epoch_view - 1);
  EXPECT_EQ(pm_->current_epoch(), 0);
  EXPECT_EQ(harness_.clock().reading(), pm_->math().view_time(next_epoch_view));
  EXPECT_GE(harness_.sent_count(pacemaker::kEpochViewMsg), 2U)
      << "bootstrap share + echoed share for view 40";
  EXPECT_TRUE(pm_->parked()) << "still needs the EC (or success) for epoch 1";
  // The echoed share self-delivers: 2 foreign + own = 2f+1 distinct
  // signers = a legitimate EC. Enter epoch 1.
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), next_epoch_view);
  EXPECT_EQ(pm_->current_epoch(), 1);
}

TEST_F(LumiereUnitTest, LeaderFormsVcFromSmallQuorumAndPokesProposal) {
  start();
  // Find an initial view this node leads inside epoch 0.
  View led = -1;
  for (View v = 0; v < pm_->math().views_per_epoch(); v += 2) {
    if (pm_->leader_of(v) == harness_.self()) {
      led = v;
      break;
    }
  }
  ASSERT_GE(led, 0);
  EXPECT_FALSE(pm_->may_propose(led)) << "proposal gated until the VC is sent";
  harness_.inject_view_msg(1, led);
  EXPECT_EQ(harness_.sent_count(pacemaker::kVcMsg), 0U) << "one share is not f+1";
  harness_.inject_view_msg(2, led);
  harness_.settle();
  EXPECT_EQ(harness_.sent_count(pacemaker::kVcMsg), 1U);
  EXPECT_TRUE(pm_->may_propose(led));
  ASSERT_FALSE(harness_.pokes().empty());
  EXPECT_EQ(harness_.pokes().back(), led);
  EXPECT_TRUE(pm_->may_form_qc(led)) << "deadline window open right after VC";
}

TEST_F(LumiereUnitTest, QcDeadlineExpiresAfterGammaHalfMinusTwoDelta) {
  start();
  View led = -1;
  for (View v = 0; v < pm_->math().views_per_epoch(); v += 2) {
    if (pm_->leader_of(v) == harness_.self()) {
      led = v;
      break;
    }
  }
  ASSERT_GE(led, 0);
  harness_.inject_view_msg(1, led);
  harness_.inject_view_msg(2, led);
  harness_.settle();
  ASSERT_TRUE(pm_->may_form_qc(led));
  // Budget = Gamma/2 - 2*Delta = 50 - 20 = 30ms from the VC send.
  const TimePoint vc_time = harness_.sim().now();
  harness_.run_to(vc_time + Duration::millis(30));
  EXPECT_TRUE(pm_->may_form_qc(led)) << "exactly at the deadline is still allowed";
  harness_.run_to(vc_time + Duration::millis(31));
  EXPECT_FALSE(pm_->may_form_qc(led)) << "past the deadline the view is forfeited";
}

TEST_F(LumiereUnitTest, ByzantineAloneCannotFormTcOrEc) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  const View target = pm_->math().epoch_first_view(1);
  // f = 1 Byzantine processor sends its epoch-view share (even twice).
  harness_.inject_epoch_msg(1, target);
  harness_.inject_epoch_msg(1, target);
  harness_.settle();
  // No TC (f+1 = 2 distinct needed): no echo, no bump, view unchanged.
  EXPECT_EQ(pm_->current_view(), -1);
  EXPECT_EQ(harness_.sent_count(pacemaker::kEpochViewMsg), 1U) << "only the bootstrap share";
}

TEST_F(LumiereUnitTest, InvalidSharesRejected) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  const View target = pm_->math().epoch_first_view(1);
  // Shares whose MAC does not verify (signed for a different view) must
  // not count toward TC/EC.
  auto bogus = std::make_shared<pacemaker::EpochViewMsg>(
      target, crypto::threshold_share(harness_.auth().signer_for(1),
                                      pacemaker::epoch_msg_statement(target + 40)));
  pm_->on_message(1, bogus);
  auto bogus2 = std::make_shared<pacemaker::EpochViewMsg>(
      target, crypto::threshold_share(harness_.auth().signer_for(2),
                                      pacemaker::epoch_msg_statement(target + 40)));
  pm_->on_message(2, bogus2);
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), -1) << "forged shares must not form a TC";
}

TEST_F(LumiereUnitTest, StaleEpochSharesIgnored) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  // Enter epoch 0 via EC.
  harness_.inject_epoch_msg(1, 0);
  harness_.inject_epoch_msg(2, 0);
  harness_.settle();
  ASSERT_EQ(pm_->current_epoch(), 0);
  const auto epoch_msgs_before = harness_.sent_count(pacemaker::kEpochViewMsg);
  // Epoch-view messages for an *old* boundary (view 0, epoch 0 <= current)
  // arrive late: handled by the E(v) >= epoch(p) check in handle_tc via
  // epoch filtering — and must not regress anything.
  harness_.inject_epoch_msg(3, 0);
  harness_.settle();
  EXPECT_EQ(pm_->current_epoch(), 0);
  EXPECT_EQ(pm_->current_view(), 0);
  EXPECT_EQ(harness_.sent_count(pacemaker::kEpochViewMsg), epoch_msgs_before);
}

TEST_F(LumiereUnitTest, ClockPacedEntryOfInitialViews) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  harness_.inject_epoch_msg(1, 0);
  harness_.inject_epoch_msg(2, 0);
  harness_.settle();
  ASSERT_EQ(pm_->current_view(), 0);
  // With no QCs flowing, the clock paces through initial views: at
  // lc = c_2 = 200ms the processor enters view 2 (epoch still 0).
  harness_.run_to(TimePoint(Duration::millis(10).ticks()) + Duration::millis(200));
  EXPECT_EQ(pm_->current_view(), 2);
  EXPECT_EQ(pm_->current_epoch(), 0);
  harness_.run_to(TimePoint(Duration::millis(10).ticks()) + Duration::millis(400));
  EXPECT_EQ(pm_->current_view(), 4);
}

TEST_F(LumiereUnitTest, QcStreakBumpsThroughViews) {
  start();
  harness_.run_to(TimePoint(Duration::millis(10).ticks()));
  harness_.inject_epoch_msg(1, 0);
  harness_.inject_epoch_msg(2, 0);
  harness_.settle();
  // A streak of QCs moves the view at network speed and bumps the clock
  // to c_{v+1} each time (lines 44-48).
  for (View v = 0; v < 10; ++v) {
    harness_.inject_qc(v);
    harness_.settle();
    EXPECT_EQ(pm_->current_view(), v + 1);
    EXPECT_EQ(harness_.clock().reading(), pm_->math().view_time(v + 1));
  }
  // Views only move forward (Lemma 5.2): an old QC re-delivered changes
  // nothing.
  harness_.inject_qc(3);
  harness_.settle();
  EXPECT_EQ(pm_->current_view(), 10);
}

}  // namespace
}  // namespace lumiere::core
