// Basic Lumiere (§3.4): epoch structure + Fever bumping, no success
// criterion — every epoch pays the heavy synchronization.
#include "core/basic_lumiere.h"

#include <gtest/gtest.h>

#include "pacemaker/messages.h"
#include "runtime/cluster.h"
#include "testutil/pacemaker_harness.h"

namespace lumiere::core {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

TEST(BasicLumiereTest, EpochLayout) {
  testutil::PacemakerHarness harness(7);  // f = 2 -> epochs of 2(f+1) = 6 views
  BasicLumierePacemaker pm(harness.params(), harness.self(), harness.signer(),
                           harness.wiring(), {});
  EXPECT_EQ(pm.views_per_epoch(), 6);
  EXPECT_TRUE(pm.is_epoch_view(0));
  EXPECT_TRUE(pm.is_epoch_view(6));
  EXPECT_FALSE(pm.is_epoch_view(2)) << "initial but not an epoch view";
  EXPECT_FALSE(pm.is_epoch_view(3));
  EXPECT_EQ(pm.gamma(), Duration::millis(80));  // 2(x+1) Delta
}

TEST(BasicLumiereTest, BootstrapPausesAndBroadcasts) {
  testutil::PacemakerHarness harness(4);
  BasicLumierePacemaker pm(harness.params(), harness.self(), harness.signer(),
                           harness.wiring(), {});
  harness.attach(&pm);
  pm.start();
  harness.settle();
  // Unlike full Lumiere there is no Delta-wait: the epoch-view message
  // goes out immediately when the clock hits the boundary.
  EXPECT_TRUE(harness.clock().paused());
  EXPECT_EQ(harness.sent_count(pacemaker::kEpochViewMsg), 1U);
}

TEST(BasicLumiereTest, EcAggregatorBroadcastsCert) {
  testutil::PacemakerHarness harness(4);
  BasicLumierePacemaker pm(harness.params(), harness.self(), harness.signer(),
                           harness.wiring(), {});
  harness.attach(&pm);
  pm.start();
  harness.settle();
  // Own share (self-delivered) + two foreign = 2f+1: this processor
  // aggregates and broadcasts an EcMsg (§3.4's explicit EC broadcast),
  // then enters on its own EC.
  harness.inject_epoch_msg(1, 0);
  harness.inject_epoch_msg(2, 0);
  harness.settle();
  EXPECT_EQ(harness.sent_count(pacemaker::kEcMsg), 1U);
  EXPECT_EQ(pm.current_view(), 0);
  EXPECT_FALSE(harness.clock().paused());
}

TEST(BasicLumiereTest, EveryEpochPaysHeavySync) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("basic-lumiere");
  options.seed(81);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  const auto& pm =
      static_cast<const BasicLumierePacemaker&>(cluster.node(0).pacemaker());
  const View reached = cluster.max_honest_view();
  const std::int64_t epochs_crossed = reached / pm.views_per_epoch();
  ASSERT_GE(epochs_crossed, 5);
  const auto epoch_msgs = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  // Every epoch boundary involves each honest node broadcasting its
  // epoch-view share to the other 3 processors: >= 4 * 3 per epoch.
  EXPECT_GE(epoch_msgs, static_cast<std::uint64_t>(epochs_crossed) * 4 * 3 / 2)
      << "Basic Lumiere must keep paying heavy synchronization (no success criterion)";
}

TEST(BasicLumiereTest, ResponsiveWithinEpochs) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("basic-lumiere");
  options.seed(82);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(300)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));
  const auto& decisions = cluster.metrics().decisions();
  ASSERT_GE(decisions.size(), 50U);
  // Consecutive in-epoch decisions spaced at network speed (~3 delta),
  // far below Gamma.
  std::size_t fast_pairs = 0;
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    if (decisions[i].at - decisions[i - 1].at <= Duration::millis(2)) ++fast_pairs;
  }
  EXPECT_GT(fast_pairs, decisions.size() / 2);
}

TEST(BasicLumiereTest, VcForEpochViewRejected) {
  // §3.4: VCs exist only for initial non-epoch views. A (forged-looking)
  // VC for the epoch view must not admit entry.
  testutil::PacemakerHarness harness(4);
  BasicLumierePacemaker pm(harness.params(), harness.self(), harness.signer(),
                           harness.wiring(), {});
  harness.attach(&pm);
  pm.start();
  harness.settle();
  harness.inject_vc(0);  // view 0 is the epoch view
  harness.settle();
  EXPECT_EQ(pm.current_view(), -1) << "epoch views are entered via EC, not VC";
  EXPECT_TRUE(harness.clock().paused());
}

}  // namespace
}  // namespace lumiere::core
