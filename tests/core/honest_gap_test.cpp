// Honest-gap properties (Definition 3.1 / Lemma 5.9): the (f+1)-st honest
// gap never increases within an epoch except to a value <= Gamma, and in
// the steady state it stays <= Gamma + Delta.
#include "core/honest_gap_tracker.h"

#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

TEST(HonestGapTrackerTest, ComputesSortedGaps) {
  sim::Simulator sim;
  sim::LocalClock a(&sim, TimePoint::origin());
  sim::LocalClock b(&sim, TimePoint::origin());
  sim::LocalClock c(&sim, TimePoint::origin());
  sim.run_until(TimePoint(100));
  b.bump_to(Duration(250));
  c.bump_to(Duration(150));
  // Readings: a=100, b=250, c=150. Sorted desc: 250, 150, 100.
  core::HonestGapTracker tracker({&a, &b, &c});
  EXPECT_EQ(tracker.gap(1), Duration(0));
  EXPECT_EQ(tracker.gap(2), Duration(100));
  EXPECT_EQ(tracker.gap(3), Duration(150));
}

class GapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapSweep, SteadyStateGapBoundedUnderFaults) {
  // With up to f silent leaders and jittery delays, once the first epoch
  // completes the (f+1)-st honest gap should settle at <= Gamma + Delta
  // (Lemma 5.15's consequence hg <= Gamma + Delta at epoch starts, and
  // Lemma 5.9 within epochs).
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(10));
  ScenarioBuilder options;
  options.params(params);
  options.pacemaker("lumiere");
  options.seed(GetParam());
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100),
                                                      Duration::millis(4)));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.start();

  const auto& pm =
      static_cast<const core::LumierePacemaker&>(cluster.node(2).pacemaker());
  const Duration gamma = pm.gamma();
  const Duration bound = gamma + params.delta_cap;
  const std::uint32_t k = params.f + 1;
  const auto tracker = cluster.honest_gap_tracker();

  // Warm up past the bootstrap epoch sync.
  cluster.run_for(Duration::seconds(2));
  Duration worst = Duration::zero();
  const TimePoint deadline = cluster.sim().now() + Duration::seconds(10);
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    worst = std::max(worst, tracker.gap(k));
  }
  EXPECT_LE(worst, bound) << "hg_{f+1} exceeded Gamma + Delta in steady state";
  EXPECT_GE(cluster.metrics().decisions().size(), 10U) << "run must be live to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapSweep, ::testing::Values(1U, 2U, 3U, 4U, 5U));

TEST(HonestGapTest, QcProductionShrinksLargeGap) {
  // Section 3.5 claim (b): honest-leader QCs after GST shrink the
  // (f+1)-st honest gap when it is large. Start desynchronized (staggered
  // joins), then watch the gap fall below Gamma and stay there.
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const TimePoint gst(Duration::millis(800).ticks());
  ScenarioBuilder options;
  options.params(params);
  options.pacemaker("lumiere");
  options.seed(17);
  options.join_stagger(Duration::millis(700));
  options.gst(gst);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(options);
  cluster.start();

  const auto& pm = static_cast<const core::LumierePacemaker&>(cluster.node(0).pacemaker());
  const Duration gamma = pm.gamma();
  const auto tracker = cluster.honest_gap_tracker();
  const std::uint32_t k = params.f + 1;

  cluster.run_until(gst + Duration::seconds(30));
  // By now synchronization must have brought the gap under Gamma + Delta.
  EXPECT_LE(tracker.gap(k), gamma + params.delta_cap);
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
}

}  // namespace
}  // namespace lumiere::runtime
