// Property tests for the Section 5 lemmas, checked after every simulator
// event across seeds and adversaries (parameterized sweep).
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

const core::LumierePacemaker& lumiere_of(const Cluster& cluster, ProcessId id) {
  return static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
}

struct SweepCase {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint32_t byzantine;  // count of silent-leader processes
};

class LumiereInvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LumiereInvariantSweep, Section5LemmasHoldEventwise) {
  const SweepCase c = GetParam();
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(c.n, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(c.seed);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(200),
                                                      Duration::millis(5)));
  if (c.byzantine > 0) {
    std::vector<ProcessId> byz;
    for (ProcessId id = 0; id < c.byzantine; ++id) byz.push_back(id);
    options.behaviors(adversary::byzantine_set(
        byz, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  }
  Cluster cluster(options);
  cluster.start();

  const auto& math = lumiere_of(cluster, 0).math();
  std::vector<View> last_view(c.n, -1);
  std::vector<Epoch> last_epoch(c.n, -1);
  std::vector<Duration> last_clock(c.n, Duration::zero());

  const TimePoint deadline = TimePoint::origin() + Duration::seconds(15);
  std::uint64_t checks = 0;
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    for (const ProcessId id : cluster.honest_ids()) {
      const auto& pm = lumiere_of(cluster, id);
      const View v = pm.current_view();
      const Epoch e = pm.current_epoch();
      const Duration lc = cluster.node(id).local_clock().reading();

      // Lemma 5.1: E(view(p)) == epoch(p).
      ASSERT_EQ(math.epoch_of(v), e) << "Lemma 5.1 violated at node " << id;

      // Lemma 5.2: views, epochs and clocks are monotone.
      ASSERT_GE(v, last_view[id]) << "view regressed at node " << id;
      ASSERT_GE(e, last_epoch[id]) << "epoch regressed at node " << id;
      ASSERT_GE(lc, last_clock[id]) << "clock regressed at node " << id;
      last_view[id] = v;
      last_epoch[id] = e;
      last_clock[id] = lc;

      // Lemma 5.3: while in view pair (v0, v0+1), lc in [c_v0, c_v0+2]
      // (initial v0). Equivalently: view_at(lc) is within the pair span.
      if (v >= 0) {
        const View v0 = v - (v % 2);  // the initial view of p's pair
        ASSERT_GE(lc, math.view_time(v0)) << "lc below its view at node " << id;
        ASSERT_LE(lc, math.view_time(v0 + 2)) << "lc beyond view+2 at node " << id;
      }
      ++checks;
    }
  }
  EXPECT_GT(checks, 1000U) << "sweep too short to be meaningful";

  // The run must also be live (condition (2) of the view-sync task).
  EXPECT_GE(cluster.metrics().decisions().size(), 5U);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, LumiereInvariantSweep,
    ::testing::Values(SweepCase{1, 4, 0}, SweepCase{2, 4, 1}, SweepCase{3, 7, 0},
                      SweepCase{4, 7, 2}, SweepCase{5, 10, 3}, SweepCase{6, 10, 0},
                      SweepCase{7, 4, 1}, SweepCase{8, 7, 1}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" + std::to_string(info.param.n) +
             "_byz" + std::to_string(info.param.byzantine);
    });

TEST(LumiereInvariantTest, Lemma54EpochEntryRequiresPredecessors) {
  // Lemma 5.4: when any honest processor is in epoch e, at least f+1
  // honest processors entered epoch e-1 before it. We check the global
  // consequence: the maximum honest epoch never exceeds the count of
  // honest processors in the previous epoch's reach.
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  ScenarioBuilder options;
  options.params(params);
  options.pacemaker("lumiere");
  options.seed(11);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(options);
  cluster.start();
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(20);
  Epoch max_epoch_seen = -1;
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    Epoch hi = -1;
    std::uint32_t at_or_above_prev = 0;
    for (const ProcessId id : cluster.honest_ids()) {
      hi = std::max(hi, lumiere_of(cluster, id).current_epoch());
    }
    if (hi > max_epoch_seen) {
      max_epoch_seen = hi;
      for (const ProcessId id : cluster.honest_ids()) {
        if (lumiere_of(cluster, id).current_epoch() >= hi - 1) ++at_or_above_prev;
      }
      ASSERT_GE(at_or_above_prev, params.small_quorum())
          << "epoch " << hi << " entered without f+1 predecessors in " << hi - 1;
    }
  }
  EXPECT_GE(max_epoch_seen, 1) << "run never crossed an epoch boundary";
}

}  // namespace
}  // namespace lumiere::runtime
