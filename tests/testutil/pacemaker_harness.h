// Harness wiring a SINGLE pacemaker instance with captured outputs and
// direct message injection — unit-level testing of the view-sync logic
// without a full cluster (the other n-1 processors are played by the
// test via the shared authenticator's signers).
#pragma once

#include <memory>
#include <vector>

#include "crypto/authenticator.h"
#include "pacemaker/certificates.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"
#include "sim/local_clock.h"
#include "sim/simulator.h"

namespace lumiere::testutil {

class PacemakerHarness {
 public:
  struct Sent {
    ProcessId to;  ///< kNoProcess for broadcasts
    MessagePtr msg;
  };

  explicit PacemakerHarness(std::uint32_t n, ProcessId self = 0)
      : params_(ProtocolParams::for_n(n, Duration::millis(10))),
        auth_(crypto::make_authenticator(crypto::kDefaultScheme, n, 7)),
        self_(self),
        clock_(&sim_, TimePoint::origin()) {}

  /// Builds wiring whose outputs land in this harness.
  [[nodiscard]] pacemaker::PacemakerWiring wiring() {
    pacemaker::PacemakerWiring w;
    w.sim = &sim_;
    w.clock = &clock_;
    w.auth = crypto::AuthView(auth_.get());
    w.send = [this](ProcessId to, MessagePtr msg) {
      sent_.push_back(Sent{to, std::move(msg)});
    };
    w.broadcast = [this](MessagePtr msg) {
      sent_.push_back(Sent{kNoProcess, std::move(msg)});
      // Self-delivery per the paper's broadcast convention.
      if (pm_ != nullptr) {
        auto copy = sent_.back().msg;
        sim_.schedule_at(sim_.now(), [this, copy] { pm_->on_message(self_, copy); });
      }
    };
    w.enter_view = [this](View v) { entered_.push_back(v); };
    w.propose_poke = [this](View v) { pokes_.push_back(v); };
    return w;
  }

  /// Registers the pacemaker under test (after construction).
  void attach(pacemaker::Pacemaker* pm) { pm_ = pm; }

  /// Injects a view message for view v signed by processor `from`.
  void inject_view_msg(ProcessId from, View v) {
    pm_->on_message(from, std::make_shared<pacemaker::ViewMsg>(
                              v, crypto::threshold_share(auth_->signer_for(from),
                                                         pacemaker::view_msg_statement(v))));
  }

  /// Injects an epoch-view message for view v signed by `from`.
  void inject_epoch_msg(ProcessId from, View v) {
    pm_->on_message(from,
                    std::make_shared<pacemaker::EpochViewMsg>(
                        v, crypto::threshold_share(auth_->signer_for(from),
                                                   pacemaker::epoch_msg_statement(v))));
  }

  /// Injects a VC for view v aggregated from the first f+1 processors.
  void inject_vc(View v) {
    crypto::QuorumAggregator agg(crypto::AuthView(auth_.get()),
                                 pacemaker::view_msg_statement(v), params_.small_quorum());
    for (ProcessId id = 0; id < params_.small_quorum(); ++id) {
      agg.add(crypto::threshold_share(auth_->signer_for(id), pacemaker::view_msg_statement(v)));
    }
    pm_->on_message(1, std::make_shared<pacemaker::VcMsg>(
                           pacemaker::SyncCert(v, agg.aggregate())));
  }

  /// Feeds a (valid) QC for view v to the pacemaker.
  void inject_qc(View v) {
    const crypto::Digest block = crypto::Sha256::hash("block");
    const crypto::Digest statement = consensus::QuorumCert::statement(v, block);
    crypto::QuorumAggregator agg(crypto::AuthView(auth_.get()), statement, params_.quorum());
    for (ProcessId id = 0; id < params_.quorum(); ++id) {
      agg.add(crypto::threshold_share(auth_->signer_for(id), statement));
    }
    pm_->on_qc(consensus::QuorumCert(v, block, agg.aggregate()));
  }

  /// Counts captured sends of one message type (broadcasts count once).
  [[nodiscard]] std::size_t sent_count(std::uint32_t type_id) const {
    std::size_t count = 0;
    for (const auto& s : sent_) {
      if (s.msg->type_id() == type_id) ++count;
    }
    return count;
  }

  [[nodiscard]] const std::vector<Sent>& sent() const { return sent_; }
  [[nodiscard]] const std::vector<View>& entered() const { return entered_; }
  [[nodiscard]] const std::vector<View>& pokes() const { return pokes_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::LocalClock& clock() { return clock_; }
  [[nodiscard]] const ProtocolParams& params() const { return params_; }
  [[nodiscard]] const crypto::Authenticator& auth() const { return *auth_; }
  [[nodiscard]] crypto::AuthView auth_view() const { return crypto::AuthView(auth_.get()); }
  [[nodiscard]] crypto::Signer signer() const { return auth_->signer_for(self_); }
  [[nodiscard]] ProcessId self() const { return self_; }

  void run_to(TimePoint t) { sim_.run_until(t); }
  void settle() { sim_.run_until(sim_.now()); }

 private:
  ProtocolParams params_;
  std::unique_ptr<crypto::Authenticator> auth_;
  ProcessId self_;
  sim::Simulator sim_;
  sim::LocalClock clock_;
  pacemaker::Pacemaker* pm_ = nullptr;
  std::vector<Sent> sent_;
  std::vector<View> entered_;
  std::vector<View> pokes_;
};

}  // namespace lumiere::testutil
