// GTest adapter for the shared correctness oracles (fuzz/oracles.h).
//
// The integration suites and the scenario fuzzer check the same
// properties through the same library; tests wrap a verdict in
// oracle_ok() so a violation prints its self-contained description:
//
//   EXPECT_TRUE(testutil::oracle_ok(fuzz::check_safety(cluster)));
//   EXPECT_TRUE(testutil::oracle_ok(
//       fuzz::check_decision_liveness(cluster, gst, Duration::seconds(60), 10)));
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fuzz/oracles.h"

namespace lumiere::testutil {

/// Success when the oracle was satisfied; otherwise a failure carrying
/// the oracle's violation description.
inline ::testing::AssertionResult oracle_ok(const std::optional<std::string>& violation) {
  if (!violation.has_value()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << *violation;
}

}  // namespace lumiere::testutil
