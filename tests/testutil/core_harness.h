// Test harness that wires N consensus cores through the simulated network
// with a *manual* pacemaker: the test decides when each core enters each
// view. Isolates the underlying-protocol logic from view synchronization.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "consensus/chained_hotstuff.h"
#include "consensus/hotstuff2.h"
#include "consensus/simple_view_core.h"
#include "crypto/authenticator.h"
#include "sim/delay_policy.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lumiere::testutil {

template <typename Core>
class CoreHarness {
 public:
  struct NodeState {
    std::unique_ptr<Core> core;
    std::vector<consensus::QuorumCert> qcs_seen;
    std::vector<consensus::QuorumCert> qcs_formed;
    std::vector<crypto::Digest> committed;
  };

  explicit CoreHarness(std::uint32_t n, Duration delay = Duration::micros(10),
                       std::function<bool(View)> may_form_qc = nullptr)
      : params_(ProtocolParams::for_n(n, Duration::millis(10))),
        auth_(crypto::make_authenticator(crypto::kDefaultScheme, n, 99)),
        network_(&sim_, n, TimePoint::origin(), params_.delta_cap,
                 std::make_shared<sim::FixedDelay>(delay), 3) {
    nodes_.resize(n);
    for (ProcessId id = 0; id < n; ++id) {
      consensus::CoreCallbacks cb;
      cb.send = [this, id](ProcessId to, MessagePtr msg) {
        network_.send(id, to, std::move(msg));
      };
      cb.broadcast = [this, id](MessagePtr msg) { network_.broadcast(id, msg); };
      cb.qc_seen = [this, id](const consensus::QuorumCert& qc) {
        nodes_[id].qcs_seen.push_back(qc);
      };
      cb.qc_formed = [this, id](const consensus::QuorumCert& qc) {
        nodes_[id].qcs_formed.push_back(qc);
      };
      cb.decided = [this, id](const consensus::Block& b) {
        nodes_[id].committed.push_back(b.hash());
      };
      cb.schedule = [this](Duration delay, std::function<void()> fn) {
        sim_.schedule_after(delay, std::move(fn));
      };
      consensus::PacemakerHooks hooks;
      hooks.leader_of = [n](View v) {
        return static_cast<ProcessId>(v >= 0 ? v % n : 0);
      };
      hooks.may_form_qc = may_form_qc;
      nodes_[id].core = std::make_unique<Core>(params_, crypto::AuthView(auth_.get()),
                                               auth_->signer_for(id), std::move(cb),
                                               std::move(hooks));
      network_.register_endpoint(id, [this, id](ProcessId from, const MessagePtr& msg) {
        nodes_[id].core->on_message(from, msg);
      });
    }
  }

  /// Moves every core into view v and drains the network.
  void enter_view_all(View v) {
    for (auto& node : nodes_) node.core->on_enter_view(v);
    settle();
  }

  void enter_view(ProcessId id, View v) { nodes_[id].core->on_enter_view(v); }

  void settle() { sim_.run_until_idle(); }

  [[nodiscard]] NodeState& node(ProcessId id) { return nodes_[id]; }
  [[nodiscard]] Core& core(ProcessId id) { return *nodes_[id].core; }
  [[nodiscard]] const ProtocolParams& params() const { return params_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Network& network() { return network_; }
  [[nodiscard]] const crypto::Authenticator& auth() const { return *auth_; }
  [[nodiscard]] crypto::AuthView auth_view() const { return crypto::AuthView(auth_.get()); }
  [[nodiscard]] std::uint32_t n() const { return params_.n; }

  /// True if every node saw a QC for view v.
  [[nodiscard]] bool all_saw_qc(View v) const {
    for (const auto& node : nodes_) {
      bool found = false;
      for (const auto& qc : node.qcs_seen) {
        if (qc.view() == v) found = true;
      }
      if (!found) return false;
    }
    return true;
  }

 private:
  ProtocolParams params_;
  std::unique_ptr<crypto::Authenticator> auth_;
  sim::Simulator sim_;
  sim::Network network_;
  std::vector<NodeState> nodes_;
};

}  // namespace lumiere::testutil
