#include "common/params.h"

#include <gtest/gtest.h>

namespace lumiere {
namespace {

TEST(ProtocolParamsTest, ForNComputesF) {
  const auto p4 = ProtocolParams::for_n(4, Duration::millis(10));
  EXPECT_EQ(p4.f, 1U);
  EXPECT_EQ(p4.quorum(), 3U);
  EXPECT_EQ(p4.small_quorum(), 2U);

  const auto p31 = ProtocolParams::for_n(31, Duration::millis(10));
  EXPECT_EQ(p31.f, 10U);
  EXPECT_EQ(p31.quorum(), 21U);
  EXPECT_EQ(p31.small_quorum(), 11U);
}

TEST(ProtocolParamsTest, QuorumsOverlapInHonestProcess) {
  // 2 * quorum() - n >= f + 1: two quorums share an honest processor.
  for (std::uint32_t n : {4U, 7U, 10U, 31U, 64U}) {
    const auto p = ProtocolParams::for_n(n, Duration::millis(1));
    EXPECT_GE(2 * p.quorum(), p.n + p.f + 1);
  }
}

TEST(ProtocolParamsDeathTest, RejectsBadN) {
  EXPECT_DEATH(ProtocolParams::for_n(5, Duration::millis(1)).validate(), "3f");
}

TEST(ProtocolParamsDeathTest, RejectsZeroDelta) {
  ProtocolParams p;
  p.n = 4;
  p.f = 1;
  p.delta_cap = Duration::zero();
  EXPECT_DEATH(p.validate(), "delta");
}

}  // namespace
}  // namespace lumiere
