#include "common/params.h"

#include <gtest/gtest.h>

namespace lumiere {
namespace {

TEST(ProtocolParamsTest, ForNComputesF) {
  const auto p4 = ProtocolParams::for_n(4, Duration::millis(10));
  EXPECT_EQ(p4.f, 1U);
  EXPECT_EQ(p4.quorum(), 3U);
  EXPECT_EQ(p4.small_quorum(), 2U);

  const auto p31 = ProtocolParams::for_n(31, Duration::millis(10));
  EXPECT_EQ(p31.f, 10U);
  EXPECT_EQ(p31.quorum(), 21U);
  EXPECT_EQ(p31.small_quorum(), 11U);
}

TEST(ProtocolParamsTest, QuorumsOverlapInHonestProcess) {
  // 2 * quorum() - n >= f + 1: two quorums share an honest processor.
  // Includes the non-3f+1 sizes (5, 6, 8) the soak cluster runs.
  for (std::uint32_t n : {4U, 5U, 6U, 7U, 8U, 10U, 31U, 64U}) {
    const auto p = ProtocolParams::for_n(n, Duration::millis(1));
    EXPECT_GE(2 * p.quorum(), p.n + p.f + 1);
  }
}

TEST(ProtocolParamsTest, GeneralizedQuorumMatchesClassicAtOptimalResilience) {
  // At n = 3f + 1 the generalized quorum is exactly the paper's 2f + 1 —
  // the formula change is byte-invisible to every existing configuration.
  for (std::uint32_t f : {1U, 2U, 3U, 10U, 21U}) {
    const auto p = ProtocolParams::for_n(3 * f + 1, Duration::millis(1));
    EXPECT_EQ(p.quorum(), 2 * f + 1);
  }
  // n = 5 (the soak topology): f = 1, quorum 4 — any two quorums of 4
  // among 5 intersect in >= 3 >= f + 1 processors.
  const auto p5 = ProtocolParams::for_n(5, Duration::millis(1));
  EXPECT_EQ(p5.f, 1U);
  EXPECT_EQ(p5.quorum(), 4U);
}

TEST(ProtocolParamsDeathTest, RejectsBadN) {
  // n below 3f + 1 (too few processors for the declared fault budget).
  ProtocolParams p;
  p.n = 3;
  p.f = 1;
  EXPECT_DEATH(p.validate(), "3f");
}

TEST(ProtocolParamsDeathTest, RejectsZeroDelta) {
  ProtocolParams p;
  p.n = 4;
  p.f = 1;
  p.delta_cap = Duration::zero();
  EXPECT_DEATH(p.validate(), "delta");
}

}  // namespace
}  // namespace lumiere
