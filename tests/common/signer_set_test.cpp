#include "common/signer_set.h"

#include <gtest/gtest.h>

namespace lumiere {
namespace {

TEST(SignerSetTest, AddAndContains) {
  SignerSet set(100);
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.add(0));
  EXPECT_TRUE(set.add(63));
  EXPECT_TRUE(set.add(64));
  EXPECT_TRUE(set.add(99));
  EXPECT_FALSE(set.add(63)) << "duplicate add must return false";
  EXPECT_EQ(set.count(), 4U);
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(64));
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(200)) << "out-of-universe lookups are false, not UB";
}

TEST(SignerSetTest, MembersSorted) {
  SignerSet set(10);
  set.add(7);
  set.add(2);
  set.add(5);
  const auto members = set.members();
  ASSERT_EQ(members.size(), 3U);
  EXPECT_EQ(members[0], 2U);
  EXPECT_EQ(members[1], 5U);
  EXPECT_EQ(members[2], 7U);
}

TEST(SignerSetTest, IntersectionCount) {
  SignerSet a(130);
  SignerSet b(130);
  for (ProcessId id = 0; id < 100; id += 2) a.add(id);      // evens < 100
  for (ProcessId id = 0; id < 130; id += 3) b.add(id);      // multiples of 3
  // Intersection: multiples of 6 below 100 -> 0,6,...,96 -> 17 values.
  EXPECT_EQ(a.intersection_count(b), 17U);
}

TEST(SignerSetTest, EqualityIsSetEquality) {
  SignerSet a(8);
  SignerSet b(8);
  a.add(3);
  a.add(5);
  b.add(5);
  b.add(3);
  EXPECT_EQ(a, b);
  b.add(1);
  EXPECT_NE(a, b);
}

TEST(SignerSetTest, QuorumIntersectionProperty) {
  // Two quorums of 2f+1 out of n = 3f+1 intersect in >= f+1 processes —
  // the core of every proof in the paper. Checked for several f.
  for (std::uint32_t f : {1U, 2U, 5U, 10U}) {
    const std::uint32_t n = 3 * f + 1;
    SignerSet q1(n);
    SignerSet q2(n);
    for (ProcessId id = 0; id < 2 * f + 1; ++id) q1.add(id);            // first 2f+1
    for (ProcessId id = n - (2 * f + 1); id < n; ++id) q2.add(id);      // last 2f+1
    EXPECT_GE(q1.intersection_count(q2), f + 1);
  }
}

}  // namespace
}  // namespace lumiere
