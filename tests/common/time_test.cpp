#include "common/time.h"

#include <gtest/gtest.h>

namespace lumiere {
namespace {

TEST(DurationTest, ArithmeticAndComparison) {
  const Duration a = Duration::millis(3);
  const Duration b = Duration::micros(500);
  EXPECT_EQ((a + b).ticks(), 3500);
  EXPECT_EQ((a - b).ticks(), 2500);
  EXPECT_EQ((a * 4).ticks(), 12000);
  EXPECT_EQ((4 * a).ticks(), 12000);
  EXPECT_EQ((a / 3).ticks(), 1000);
  EXPECT_LT(b, a);
  EXPECT_EQ(Duration::seconds(2), Duration::millis(2000));
  EXPECT_EQ((-a).ticks(), -3000);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = Duration::zero();
  d += Duration::micros(10);
  d -= Duration::micros(4);
  EXPECT_EQ(d.ticks(), 6);
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::seconds(2).to_seconds(), 2.0);
  EXPECT_EQ(Duration::max().ticks(), std::numeric_limits<std::int64_t>::max());
}

TEST(TimePointTest, ArithmeticAndOrdering) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0), Duration::millis(5));
  EXPECT_EQ((t1 - Duration::millis(5)), t0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1.since_origin(), Duration::millis(5));
}

TEST(TimePointTest, CompoundAdvance) {
  TimePoint t = TimePoint::origin();
  t += Duration::micros(7);
  EXPECT_EQ(t.ticks(), 7);
}

}  // namespace
}  // namespace lumiere
