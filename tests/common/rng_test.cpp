#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lumiere {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U) << "all values in [-3,3] should appear";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(13);
  for (std::uint32_t n : {1U, 2U, 5U, 64U}) {
    const auto perm = rng.permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::set<std::uint32_t> values(perm.begin(), perm.end());
    EXPECT_EQ(values.size(), n);
    EXPECT_EQ(*values.begin(), 0U);
    EXPECT_EQ(*values.rbegin(), n - 1);
  }
}

TEST(RngTest, PermutationsVaryAcrossDraws) {
  Rng rng(17);
  const auto a = rng.permutation(32);
  const auto b = rng.permutation(32);
  EXPECT_NE(a, b);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream should not replay the parent stream.
  Rng parent2(21);
  (void)parent2.next();  // same position as parent after fork
  EXPECT_NE(child.next(), parent2.next());
}

TEST(RngTest, RoughUniformity) {
  Rng rng(23);
  std::vector<int> buckets(10, 0);
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(10)];
  for (const int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - 400);
    EXPECT_LT(count, kDraws / 10 + 400);
  }
}

}  // namespace
}  // namespace lumiere
