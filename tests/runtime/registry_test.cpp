// ProtocolRegistry: the string-keyed construction surface every
// experiment goes through. Covers the error path (unknown names must
// fail loudly and helpfully), the full pacemaker x core matrix (every
// registered pair must boot and make view progress), and extensibility
// (downstream code can register protocols under new names).
#include "runtime/registry.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

#include <set>

#include "pacemaker/round_robin.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

TEST(ProtocolRegistryTest, BuiltinsAreRegistered) {
  const auto& registry = ProtocolRegistry::instance();
  for (const char* name : {"round-robin", "cogsworth", "nk20", "raresync", "lp22", "fever",
                           "basic-lumiere", "lumiere"}) {
    EXPECT_TRUE(registry.has_pacemaker(name)) << name;
  }
  for (const char* name : {"simple-view", "chained-hotstuff", "hotstuff-2"}) {
    EXPECT_TRUE(registry.has_core(name)) << name;
  }
  EXPECT_FALSE(registry.has_pacemaker("simple-view")) << "cores are a separate namespace";
  EXPECT_FALSE(registry.has_core("lumiere"));
}

TEST(ProtocolRegistryTest, NamesAreSortedAndDistinct) {
  const auto& registry = ProtocolRegistry::instance();
  const auto pacemakers = registry.pacemaker_names();
  const auto cores = registry.core_names();
  EXPECT_TRUE(std::is_sorted(pacemakers.begin(), pacemakers.end()));
  EXPECT_TRUE(std::is_sorted(cores.begin(), cores.end()));
  EXPECT_EQ(std::set<std::string>(pacemakers.begin(), pacemakers.end()).size(),
            pacemakers.size());
}

TEST(ProtocolRegistryTest, UnknownPacemakerNameYieldsActionableError) {
  ScenarioBuilder builder;
  builder.pacemaker("lumiere-typo");
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("lumiere-typo"), std::string::npos) << errors[0];
  EXPECT_NE(errors[0].find("lumiere"), std::string::npos)
      << "error must list the registered names: " << errors[0];
  try {
    (void)builder.scenario();
    FAIL() << "scenario() must throw on an unknown pacemaker";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("lumiere-typo"), std::string::npos)
        << error.what();
  }
}

TEST(ProtocolRegistryTest, UnknownCoreNameYieldsActionableError) {
  ScenarioBuilder builder;
  builder.core("hotstuff-9000");
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("hotstuff-9000"), std::string::npos) << errors[0];
  EXPECT_NE(errors[0].find("chained-hotstuff"), std::string::npos) << errors[0];
}

TEST(ProtocolRegistryTest, UnknownPerNodeOverrideNamesTheNode) {
  ScenarioBuilder builder;
  builder.node(2).pacemaker("nope");
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("node 2"), std::string::npos) << errors[0];
}

TEST(ProtocolRegistryTest, MakePacemakerThrowsOnUnknownName) {
  // The registry itself (not just the builder) must reject unknown names:
  // Node construction can be reached without a ScenarioBuilder.
  sim::Simulator sim;
  sim::Network network(&sim, 4, TimePoint::origin(), Duration::millis(10), nullptr, 1);
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
  NodeConfig config;
  config.protocol.pacemaker = "bogus";
  EXPECT_THROW(Node(ProtocolParams::for_n(4, Duration::millis(10)), 0, &sim, &network, auth.get(),
                    config, {}, std::make_unique<adversary::HonestBehavior>()),
               std::invalid_argument);
}

TEST(ProtocolRegistryTest, CustomRegistrationIsUsableByName) {
  auto& registry = ProtocolRegistry::instance();
  // Guard: the singleton outlives gtest repetitions within one process.
  if (!registry.has_pacemaker("test-round-robin-alias")) {
    registry.register_pacemaker("test-round-robin-alias", [](PacemakerContext&& ctx) {
      pacemaker::RoundRobinPacemaker::Options opt;
      opt.base_timeout = ctx.params.delta_cap * (ctx.params.x + 2);
      return std::make_unique<pacemaker::RoundRobinPacemaker>(ctx.params, ctx.self, ctx.signer,
                                                              std::move(ctx.wiring), opt);
    });
  }
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
      .pacemaker("test-round-robin-alias")
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)))
      .seed(3);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(5));
  EXPECT_GT(cluster.min_honest_view(), 0) << "custom-registered pacemaker made no progress";
}

// ---------------------------------------------------------------------
// Every registered pacemaker x core pair must boot a 4-node cluster and
// make view progress — the matrix the paper's comparisons rely on.
struct PairCase {
  std::string pacemaker;
  std::string core;
};

class ProtocolMatrix : public ::testing::TestWithParam<PairCase> {};

TEST_P(ProtocolMatrix, FourNodeClusterMakesViewProgress) {
  const PairCase c = GetParam();
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker(c.pacemaker)
      .core(c.core)
      .seed(17)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(8));
  EXPECT_GT(cluster.min_honest_view(), 0)
      << c.pacemaker << " x " << c.core << " made no view progress";
  EXPECT_GE(cluster.metrics().decisions().size(), 3U)
      << c.pacemaker << " x " << c.core << " produced no decisions";
}

// ---------------------------------------------------------------------
// Large-n coverage (the matrix used to stop at n = 4): after the
// hot-path overhaul, one representative pacemaker per core family must
// boot and decide at n = 64 inside a unit-test budget, and a bounded
// n = 100 run proves the sweep scale end-to-end.
class LargeClusterMatrix : public ::testing::TestWithParam<PairCase> {};

TEST_P(LargeClusterMatrix, SixtyFourNodeClusterDecides) {
  const PairCase c = GetParam();
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(64, Duration::millis(10), /*x=*/4))
      .pacemaker(c.pacemaker)
      .core(c.core)
      .seed(23)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(3));
  EXPECT_GT(cluster.min_honest_view(), 0)
      << c.pacemaker << " x " << c.core << " made no view progress at n=64";
  EXPECT_GE(cluster.metrics().decisions().size(), 3U)
      << c.pacemaker << " x " << c.core << " produced no decisions at n=64";
}

INSTANTIATE_TEST_SUITE_P(N64, LargeClusterMatrix,
                         ::testing::Values(PairCase{"lumiere", "chained-hotstuff"},
                                           PairCase{"lp22", "simple-view"},
                                           PairCase{"cogsworth", "hotstuff-2"}),
                         [](const ::testing::TestParamInfo<PairCase>& info) {
                           std::string name = info.param.pacemaker + "_" + info.param.core;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(ProtocolRegistryTest, HundredNodeBoundedSmoke) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(100, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(29)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(2));
  EXPECT_GT(cluster.min_honest_view(), 0) << "no view progress at n=100";
  EXPECT_GE(cluster.metrics().decisions().size(), 1U) << "no decision at n=100";
}

std::vector<PairCase> all_pairs() {
  std::vector<PairCase> pairs;
  const auto& registry = ProtocolRegistry::instance();
  for (const auto& pm : registry.pacemaker_names()) {
    if (pm.rfind("test-", 0) == 0) continue;  // skip test-registered ones
    for (const auto& core : registry.core_names()) pairs.push_back({pm, core});
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ProtocolMatrix, ::testing::ValuesIn(all_pairs()),
                         [](const ::testing::TestParamInfo<PairCase>& info) {
                           std::string name = info.param.pacemaker + "_" + info.param.core;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lumiere::runtime
