// Bit-for-bit reproducibility: everything random in the library flows
// through the seeded Rng, and the simulator is single-threaded, so two
// clusters built from identical options must produce identical
// executions — the property every "reproduce this worst case from a
// seed" claim in EXPERIMENTS.md rests on.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder busy_options(std::uint64_t seed) {
  const TimePoint gst(Duration::millis(300).ticks());
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(seed);
  options.gst(gst);
  options.join_stagger(Duration::millis(200));
  options.drift_ppm_max(1'000);
  options.delay(std::make_shared<sim::PreGstChaosDelay>(
      gst, Duration::micros(200), Duration::millis(4), Duration::seconds(1)));
  options.behaviors(adversary::byzantine_set(
      {6}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  return options;
}

bool traces_equal(const sim::TraceLog& a, const sim::TraceLog& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    if (x.at != y.at || x.kind != y.kind || x.node != y.node || x.view != y.view) return false;
  }
  return true;
}

TEST(DeterminismTest, IdenticalOptionsReplayIdentically) {
  Cluster first(busy_options(424242));
  first.run_for(Duration::seconds(10));
  Cluster second(busy_options(424242));
  second.run_for(Duration::seconds(10));

  // The full structured trace — every view entry, QC formation and commit
  // on every node, with timestamps — must match event for event.
  EXPECT_TRUE(traces_equal(first.trace(), second.trace()))
      << "same seed produced different executions (" << first.trace().size() << " vs "
      << second.trace().size() << " events)";
  EXPECT_EQ(first.metrics().total_honest_msgs(), second.metrics().total_honest_msgs());
  EXPECT_EQ(first.metrics().decisions().size(), second.metrics().decisions().size());
  for (ProcessId id = 0; id < 7; ++id) {
    EXPECT_TRUE(first.node(id).ledger().prefix_consistent_with(second.node(id).ledger()));
    EXPECT_EQ(first.node(id).ledger().size(), second.node(id).ledger().size());
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check on the check: a different seed changes join times,
  // drift rates, delays and leader permutations — executions must not
  // coincide (if they did, the trace comparison above would be vacuous).
  Cluster first(busy_options(1));
  first.run_for(Duration::seconds(5));
  Cluster second(busy_options(2));
  second.run_for(Duration::seconds(5));
  EXPECT_FALSE(traces_equal(first.trace(), second.trace()));
}

// ---- fault-schedule edge cases -------------------------------------------
// Each scenario stresses one awkward corner of the schedule executor; all
// must replay bit-for-bit from the seed, like every other run.

ScenarioBuilder scheduled_options(std::uint64_t seed) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(seed);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  // Event at t = 0: the cluster boots already partitioned.
  options.partition({{0, 1, 2, 3}, {4, 5, 6}}, TimePoint::origin());
  // Two events at the same timestamp: heal + crash fire in declaration
  // order within one instant.
  options.heal(TimePoint(Duration::millis(400).ticks()));
  options.crash(5, TimePoint(Duration::millis(400).ticks()));
  options.recover(5, TimePoint(Duration::millis(900).ticks()));
  // Churn spanning a partition: node 6 leaves, a new partition forms,
  // and the node rejoins WHILE the partition is active.
  options.churn(6, TimePoint(Duration::seconds(1).ticks()),
                TimePoint(Duration::millis(2'400).ticks()));
  options.partition({{0, 1, 2}, {3, 4, 5}}, TimePoint(Duration::seconds(2).ticks()));
  options.heal(TimePoint(Duration::millis(2'800).ticks()));
  // Heal with no active partition: a defensive no-op.
  options.heal(TimePoint(Duration::seconds(3).ticks()));
  return options;
}

TEST(DeterminismTest, FaultScheduleEdgeCasesReplayIdentically) {
  Cluster first(scheduled_options(1337));
  first.run_for(Duration::seconds(8));
  Cluster second(scheduled_options(1337));
  second.run_for(Duration::seconds(8));

  EXPECT_TRUE(traces_equal(first.trace(), second.trace()))
      << "same seed + same schedule produced different executions ("
      << first.trace().size() << " vs " << second.trace().size() << " events)";
  EXPECT_EQ(first.metrics().total_honest_msgs(), second.metrics().total_honest_msgs());
  for (ProcessId id = 0; id < 7; ++id) {
    EXPECT_EQ(first.node(id).ledger().size(), second.node(id).ledger().size());
  }

  // The run made progress despite booting partitioned, and every scripted
  // event (2 from churn) is marked for regime attribution.
  EXPECT_GT(first.metrics().decisions().size(), 0U);
  EXPECT_EQ(first.metrics().regime_marks().size(), 9U);
  // The network ends healed with everyone readmitted.
  EXPECT_FALSE(first.network().partition_active());
  EXPECT_EQ(first.network().parked_count(), 0U);
  for (ProcessId id = 0; id < 7; ++id) EXPECT_FALSE(first.network().disconnected(id));
}

TEST(DeterminismTest, ChurnedNodeRejoinsDuringPartitionAndCatchesUp) {
  // Node 6 rejoins at 2.4s while {0,1,2}|{3,4,5} is cut (6 is in no
  // group, so it bridges nothing but talks to everyone); after the heal
  // it must converge with the cluster.
  Cluster cluster(scheduled_options(99));
  cluster.run_for(Duration::seconds(8));
  const View lo = cluster.min_honest_view();
  const View hi = cluster.max_honest_view();
  EXPECT_GT(lo, 0) << "cluster made no progress";
  EXPECT_LE(hi - lo, 2) << "churned node failed to catch up after rejoining";
}

TEST(DeterminismTest, ReplayIsSplitInvariant) {
  // run_for(10s) and run_for(5s)+run_for(5s) must be the same execution:
  // nothing may depend on how the driver slices simulated time.
  Cluster whole(busy_options(77));
  whole.run_for(Duration::seconds(10));
  Cluster split(busy_options(77));
  split.run_for(Duration::seconds(5));
  split.run_for(Duration::seconds(5));
  EXPECT_TRUE(traces_equal(whole.trace(), split.trace()));
}

}  // namespace
}  // namespace lumiere::runtime
