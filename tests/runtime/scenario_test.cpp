// ScenarioBuilder semantics: default/override composition, validation,
// deterministic per-node draws.
#include "runtime/scenario.h"

#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "crypto/authenticator.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

TEST(ScenarioBuilderTest, DefaultsProduceHomogeneousLumiereCluster) {
  const Scenario scenario = ScenarioBuilder().scenario();
  ASSERT_EQ(scenario.nodes.size(), 4U);
  EXPECT_EQ(scenario.transport, TransportKind::kSim);
  for (const auto& spec : scenario.nodes) {
    EXPECT_EQ(spec.protocol.pacemaker, "lumiere");
    EXPECT_EQ(spec.protocol.core, "simple-view");
    EXPECT_EQ(spec.join_time, TimePoint::origin());
    EXPECT_EQ(spec.clock_drift_ppm, 0);
    ASSERT_NE(spec.behavior, nullptr);
    EXPECT_STREQ(spec.behavior()->name(), "honest");
  }
}

TEST(ScenarioBuilderTest, PerNodeOverridesComposeWithDefaults) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(7, Duration::millis(10)))
      .pacemaker("lp22")
      .gamma(Duration::millis(50));
  builder.node(2).pacemaker("fever").fever(FeverOptions{5});
  builder.node(3).drift_ppm(123).join_time(TimePoint(42));
  builder.node(4).behavior([] { return std::make_unique<adversary::MuteBehavior>(); });
  const Scenario scenario = builder.scenario();

  EXPECT_EQ(scenario.nodes[0].protocol.pacemaker, "lp22");
  EXPECT_EQ(scenario.nodes[0].protocol.gamma, Duration::millis(50));
  EXPECT_EQ(scenario.nodes[2].protocol.pacemaker, "fever");
  EXPECT_EQ(scenario.nodes[2].protocol.fever.tenure, 5U);
  EXPECT_EQ(scenario.nodes[2].protocol.gamma, Duration::millis(50))
      << "unset tweak fields must inherit the cluster default";
  EXPECT_EQ(scenario.nodes[3].clock_drift_ppm, 123);
  EXPECT_EQ(scenario.nodes[3].join_time, TimePoint(42));
  EXPECT_STREQ(scenario.nodes[4].behavior()->name(), "mute");
  EXPECT_STREQ(scenario.nodes[5].behavior()->name(), "honest");
}

TEST(ScenarioBuilderTest, ValidateAggregatesEveryError) {
  ScenarioBuilder builder;
  ProtocolParams params;
  params.n = 5;  // below 3f + 1 (n >= 3f+1 is the rule since quorum() generalized)
  params.f = 2;
  builder.params(params).pacemaker("whoops").core("nope");
  builder.node(9).core("also-bad");
  const auto errors = builder.validate();
  EXPECT_GE(errors.size(), 4U) << "every problem must be reported, not just the first";
}

TEST(ScenarioBuilderTest, ScheduleRejectsOutOfRangeNodeIds) {
  ScenarioBuilder builder;  // n = 4
  builder.crash(7, TimePoint(1'000));
  builder.recover(7, TimePoint(2'000));
  builder.partition({{0, 1}, {2, 9}}, TimePoint(3'000));
  builder.link_delay(0, 12, std::make_shared<sim::FixedDelay>(Duration(5)), TimePoint(4'000));
  const auto errors = builder.validate();
  EXPECT_EQ(errors.size(), 4U) << "every bad id reported, not just the first";
  for (const auto& error : errors) {
    EXPECT_NE(error.find("nodes 0..3"), std::string::npos)
        << "error must name the valid range: " << error;
  }
}

TEST(ScenarioBuilderTest, ScheduleRejectsNonMonotoneEventTimes) {
  ScenarioBuilder builder;
  builder.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(2).ticks()));
  builder.heal(TimePoint(Duration::seconds(1).ticks()));  // declared after, happens before
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("timeline order"), std::string::npos) << errors[0];

  // Same instant is fine (events fire in declaration order) ...
  ScenarioBuilder same;
  same.partition({{0, 1}, {2, 3}}, TimePoint(1'000));
  same.heal(TimePoint(1'000));
  EXPECT_TRUE(same.validate().empty());

  // ... and a churn window may span later-declared events.
  ScenarioBuilder churned;
  churned.churn(2, TimePoint(1'000), TimePoint(9'000));
  churned.crash(3, TimePoint(5'000));
  churned.recover(3, TimePoint(6'000));
  EXPECT_TRUE(churned.validate().empty());
}

TEST(ScenarioBuilderTest, ScheduleRejectsMalformedPartitionsAndChurn) {
  ScenarioBuilder builder;
  builder.partition({{0, 1}, {1, 2}}, TimePoint(1'000));  // overlapping groups
  const auto overlap = builder.validate();
  ASSERT_EQ(overlap.size(), 1U);
  EXPECT_NE(overlap[0].find("more than one group"), std::string::npos) << overlap[0];

  ScenarioBuilder backwards;
  backwards.churn(1, TimePoint(5'000), TimePoint(5'000));  // rejoin not after leave
  const auto churn_errors = backwards.validate();
  ASSERT_EQ(churn_errors.size(), 1U);
  EXPECT_NE(churn_errors[0].find("strictly after"), std::string::npos) << churn_errors[0];
}

TEST(ScenarioBuilderTest, TopologyPresetsValidateAndResolve) {
  ScenarioBuilder builder;
  builder.topology("wan9");
  const auto unknown = builder.validate();
  ASSERT_EQ(unknown.size(), 1U);
  EXPECT_NE(unknown[0].find("wan3"), std::string::npos)
      << "unknown preset must list the registered ones: " << unknown[0];

  // A WAN preset under the default 10ms Delta would be clamped — rejected
  // with a pointer at delta_cap.
  ScenarioBuilder clamped;
  clamped.topology("wan3");
  const auto errors = clamped.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("delta_cap"), std::string::npos) << errors[0];

  // With a Delta above the preset's worst link it resolves into the
  // scenario's delay policy.
  ScenarioBuilder ok;
  ok.params(ProtocolParams::for_n(7, Duration::millis(200))).topology("wan3");
  const Scenario scenario = ok.scenario();
  EXPECT_EQ(scenario.topology, "wan3");
  EXPECT_NE(scenario.delay, nullptr);

  ScenarioBuilder conflicted;
  conflicted.params(ProtocolParams::for_n(4, Duration::millis(200)))
      .topology("lan")
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  const auto conflict = conflicted.validate();
  ASSERT_EQ(conflict.size(), 1U);
  EXPECT_NE(conflict[0].find("mutually exclusive"), std::string::npos) << conflict[0];
}

TEST(ScenarioBuilderTest, ScheduleIsSortedStablyIntoTheScenario) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(7, Duration::millis(10)));
  builder.churn(5, TimePoint(1'000), TimePoint(9'000));
  builder.partition({{0, 1, 2}, {3, 4}}, TimePoint(4'000));
  builder.heal(TimePoint(4'000));  // same instant: declaration order kept
  const Scenario scenario = builder.scenario();
  ASSERT_EQ(scenario.schedule.events.size(), 4U);
  EXPECT_EQ(scenario.schedule.events[0].kind, sim::FaultKind::kLeave);
  EXPECT_EQ(scenario.schedule.events[1].kind, sim::FaultKind::kPartition);
  EXPECT_EQ(scenario.schedule.events[2].kind, sim::FaultKind::kHeal);
  EXPECT_EQ(scenario.schedule.events[3].kind, sim::FaultKind::kRejoin)
      << "churn's rejoin sorts into place after later-declared events";
}

TEST(ScenarioBuilderTest, TcpTransportRejectsScheduledDelayEvents) {
  ScenarioBuilder builder;
  builder.transport_tcp(26000);
  builder.partition({{0, 1}, {2, 3}}, TimePoint(1'000));  // fine: TCP analogue exists
  builder.delay_change(std::make_shared<sim::FixedDelay>(Duration(5)), TimePoint(2'000));
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("simulator-only"), std::string::npos) << errors[0];
}

TEST(ScenarioBuilderTest, TcpTransportRejectsSimOnlyFeatures) {
  ScenarioBuilder builder;
  builder.transport_tcp(26000)
      .gst(TimePoint(Duration::seconds(1).ticks()))
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 2U);
  EXPECT_NE(errors[0].find("delay"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("GST"), std::string::npos) << errors[1];
}

TEST(ScenarioBuilderTest, TcpTransportRequiresUsablePortRange) {
  ScenarioBuilder builder;
  builder.transport_tcp(0);
  EXPECT_EQ(builder.validate().size(), 1U);
  builder.transport_tcp(65534);  // 4 nodes would need 65534..65537
  EXPECT_EQ(builder.validate().size(), 1U);
  builder.transport_tcp(65532);  // 65532..65535 — top port exactly 65535 is fine
  EXPECT_TRUE(builder.validate().empty());
  builder.transport_tcp(26000);
  EXPECT_TRUE(builder.validate().empty());
}

TEST(ScenarioBuilderTest, PipelineIsOffByDefaultAndValidatesKnobs) {
  // Default scenarios never build worker pools — the deterministic
  // simulator (and every golden digest) pins the inline verify path.
  EXPECT_FALSE(ScenarioBuilder().scenario().pipeline.enabled);
  EXPECT_EQ(ScenarioBuilder().scenario().auth_scheme, crypto::kDefaultScheme);

  PipelineSpec degenerate;
  degenerate.enabled = true;
  degenerate.workers = 0;
  degenerate.queue_capacity = 0;
  ScenarioBuilder builder;
  builder.transport_tcp(26000).pipeline(degenerate);
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 2U);
  EXPECT_NE(errors[0].find("workers"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("queue_capacity"), std::string::npos) << errors[1];
}

TEST(ScenarioBuilderTest, PipelineRequiresTheTcpTransport) {
  PipelineSpec pipeline;
  pipeline.enabled = true;
  ScenarioBuilder builder;
  builder.pipeline(pipeline);  // transport defaults to the simulator
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("TCP"), std::string::npos) << errors[0];
  builder.transport_tcp(26000);
  EXPECT_TRUE(builder.validate().empty());
}

TEST(ScenarioBuilderTest, UnknownAuthSchemeIsRejectedListingKnownOnes) {
  ScenarioBuilder builder;
  builder.auth_scheme("not-a-scheme");
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("not-a-scheme"), std::string::npos) << errors[0];
  for (const auto& name : crypto::scheme_names()) {
    EXPECT_NE(errors[0].find(name), std::string::npos)
        << "error must list registered scheme " << name << ": " << errors[0];
  }
  builder.auth_scheme(crypto::kDefaultScheme);
  EXPECT_TRUE(builder.validate().empty());
}

TEST(ScenarioBuilderTest, StaggerAndDriftDrawsAreSeedDeterministic) {
  auto draw = [](std::uint64_t seed) {
    ScenarioBuilder builder;
    builder.params(ProtocolParams::for_n(7, Duration::millis(10)))
        .seed(seed)
        .join_stagger(Duration::millis(500))
        .drift_ppm_max(1000);
    return builder.scenario();
  };
  const Scenario a = draw(5);
  const Scenario b = draw(5);
  const Scenario c = draw(6);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].join_time, b.nodes[i].join_time);
    EXPECT_EQ(a.nodes[i].clock_drift_ppm, b.nodes[i].clock_drift_ppm);
    EXPECT_LE(std::abs(a.nodes[i].clock_drift_ppm), 1000);
    any_differs = any_differs || a.nodes[i].join_time != c.nodes[i].join_time;
  }
  EXPECT_TRUE(any_differs) << "different seeds must draw different join times";
}

TEST(ScenarioBuilderTest, PerNodeOverrideDoesNotShiftOtherDraws) {
  // Fixing node 1's join time must leave nodes 0/2/3... with exactly the
  // draws they get without the override (the draw stream is consumed
  // unconditionally).
  ScenarioBuilder base;
  base.params(ProtocolParams::for_n(7, Duration::millis(10)))
      .seed(9)
      .join_stagger(Duration::millis(500));
  ScenarioBuilder tweaked = base;
  tweaked.node(1).join_time(TimePoint::origin());
  const Scenario a = base.scenario();
  const Scenario b = tweaked.scenario();
  EXPECT_EQ(b.nodes[1].join_time, TimePoint::origin());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (i == 1) continue;
    EXPECT_EQ(a.nodes[i].join_time, b.nodes[i].join_time) << "draw shifted at node " << i;
  }
}

TEST(ScenarioBuilderTest, BuilderIsCopyableAndReusable) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
      .pacemaker("round-robin")
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)))
      .seed(12);
  ScenarioBuilder copy = builder;
  copy.pacemaker("lumiere");
  EXPECT_EQ(builder.scenario().nodes[0].protocol.pacemaker, "round-robin");
  EXPECT_EQ(copy.scenario().nodes[0].protocol.pacemaker, "lumiere");
  // Two clusters from the same builder replay identically.
  Cluster first(builder);
  first.run_for(Duration::seconds(5));
  Cluster second(builder);
  second.run_for(Duration::seconds(5));
  EXPECT_EQ(first.metrics().total_honest_msgs(), second.metrics().total_honest_msgs());
}

// ---- asymmetric partitions and scheduled behavior changes ----------------

TEST(ScenarioBuilderTest, AsymPartitionValidatesGroupsAndNodeIds) {
  ScenarioBuilder builder;
  builder.asym_partition({0, 9}, {1, 1}, TimePoint::origin());
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 2U) << "out-of-range sender and duplicated receiver both reported";
  EXPECT_NE(errors[0].find("node id 9"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("twice in the receiver group"), std::string::npos) << errors[1];

  ScenarioBuilder empty_side;
  empty_side.asym_partition({0}, {}, TimePoint::origin());
  const auto empty_errors = empty_side.validate();
  ASSERT_EQ(empty_errors.size(), 1U);
  EXPECT_NE(empty_errors[0].find("receiver group must be non-empty"), std::string::npos)
      << empty_errors[0];

  // A node may sit on both sides (one-way self-isolation of its sends).
  ScenarioBuilder both_sides;
  both_sides.asym_partition({3}, {0, 1, 2, 3}, TimePoint::origin());
  EXPECT_TRUE(both_sides.validate().empty());
}

TEST(ScenarioBuilderTest, AsymPartitionKeepsTimelineOrderRule) {
  ScenarioBuilder builder;
  builder.asym_partition({0}, {1}, TimePoint(2'000));
  builder.heal(TimePoint(1'000));  // declared later, happens earlier
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("timeline order"), std::string::npos) << errors[0];
}

TEST(ScenarioBuilderTest, BehaviorChangeValidatesNameAndNode) {
  ScenarioBuilder builder;
  builder.behavior_change(9, "mute", TimePoint::origin());
  builder.behavior_change(1, "gremlin", TimePoint(5));
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 2U);
  EXPECT_NE(errors[0].find("node id 9"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("unknown behavior \"gremlin\""), std::string::npos) << errors[1];
  EXPECT_NE(errors[1].find("silent-leader"), std::string::npos)
      << "the error must list the known behaviors: " << errors[1];
}

TEST(ScenarioBuilderTest, BehaviorChangeCannotTargetACrashedNode) {
  ScenarioBuilder builder;
  builder.crash(2, TimePoint(1'000));
  builder.behavior_change(2, "mute", TimePoint(2'000));  // still down
  builder.recover(2, TimePoint(3'000));
  const auto errors = builder.validate();
  ASSERT_EQ(errors.size(), 1U);
  EXPECT_NE(errors[0].find("crashed at that instant"), std::string::npos) << errors[0];

  // After the recover (and for churn windows alike) the change is legal.
  ScenarioBuilder after;
  after.crash(2, TimePoint(1'000));
  after.recover(2, TimePoint(3'000));
  after.behavior_change(2, "mute", TimePoint(4'000));
  EXPECT_TRUE(after.validate().empty());

  ScenarioBuilder churned;
  churned.churn(1, TimePoint(1'000), TimePoint(5'000));
  churned.behavior_change(1, "equivocator", TimePoint(2'000));  // inside the window
  const auto churn_errors = churned.validate();
  ASSERT_EQ(churn_errors.size(), 1U);
  EXPECT_NE(churn_errors[0].find("crashed at that instant"), std::string::npos)
      << churn_errors[0];
}

TEST(ScenarioBuilderTest, ScheduledBehaviorChangeCountsAgainstHonestAccounting) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)));
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.behavior_change(2, "silent-leader", TimePoint(Duration::seconds(1).ticks()));
  Cluster cluster(builder);
  // Ever-Byzantine is fixed pre-run: node 2 is excluded from the honest
  // set even before the flip fires (conservative, and stable wherever the
  // mask is queried).
  EXPECT_EQ(cluster.honest_ids().size(), 3U);
  EXPECT_TRUE(cluster.byzantine_mask()[2]);
  EXPECT_FALSE(cluster.node(2).is_byzantine()) << "the node itself flips only when the event fires";
  cluster.run_for(Duration::seconds(2));
  EXPECT_TRUE(cluster.node(2).is_byzantine());
}

TEST(ScenarioBuilderTest, ChangeBackToHonestKeepsTheNodeByzantineForAccounting) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)));
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.behavior_change(1, "mute", TimePoint(Duration::millis(500).ticks()));
  builder.behavior_change(1, "honest", TimePoint(Duration::seconds(1).ticks()));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(2));
  EXPECT_TRUE(cluster.node(1).is_byzantine())
      << "a repentant node deviated earlier; accounting stays sticky";
  EXPECT_EQ(cluster.honest_ids().size(), 3U);
}

}  // namespace
}  // namespace lumiere::runtime
