#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "runtime/experiment.h"

namespace lumiere::runtime {
namespace {

ScenarioBuilder small_options(std::uint64_t seed) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.seed(seed);
  return options;
}

TEST(ClusterTest, DeterministicAcrossIdenticalRuns) {
  // Bit-for-bit reproducibility: same seed => identical decision logs and
  // message counts. The foundation of every experiment in this repo.
  auto run = [](std::uint64_t seed) {
    Cluster cluster(small_options(seed));
    cluster.run_for(Duration::seconds(10));
    return std::make_tuple(cluster.metrics().total_honest_msgs(),
                           cluster.metrics().decisions().size(),
                           cluster.metrics().decisions().empty()
                               ? TimePoint::origin()
                               : cluster.metrics().decisions().back().at,
                           cluster.max_honest_view());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<0>(run(5)), 0U);
}

TEST(ClusterTest, DifferentSeedsDiverge) {
  auto decisions_at = [](std::uint64_t seed) {
    ScenarioBuilder options = small_options(seed);
    // Jittery delays so the seed matters.
    options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100), Duration::millis(5)));
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(5));
    return cluster.metrics().total_honest_msgs();
  };
  EXPECT_NE(decisions_at(1), decisions_at(2));
}

TEST(ClusterTest, HonestIdsAndMask) {
  ScenarioBuilder options = small_options(9);
  options.behaviors(adversary::byzantine_set(
      {1}, [](ProcessId) { return std::make_unique<adversary::MuteBehavior>(); }));
  Cluster cluster(options);
  const auto honest = cluster.honest_ids();
  ASSERT_EQ(honest.size(), 3U);
  EXPECT_EQ(honest[0], 0U);
  EXPECT_EQ(honest[1], 2U);
  const auto mask = cluster.byzantine_mask();
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(cluster.node(1).is_byzantine());
}

TEST(ClusterTest, GapTrackerCoversHonestOnly) {
  ScenarioBuilder options = small_options(10);
  options.behaviors(adversary::byzantine_set(
      {3}, [](ProcessId) { return std::make_unique<adversary::MuteBehavior>(); }));
  Cluster cluster(options);
  EXPECT_EQ(cluster.honest_gap_tracker().count(), 3U);
}

TEST(ClusterTest, RunExperimentProducesMeasures) {
  ExperimentConfig config;
  config.scenario = small_options(11);
  config.run_for = Duration::seconds(20);
  config.warmup_decisions = 5;
  const RunMeasures measures = run_experiment(config);
  EXPECT_EQ(measures.protocol, "lumiere");
  EXPECT_EQ(measures.n, 4U);
  EXPECT_EQ(measures.f_actual, 0U);
  EXPECT_GE(measures.decisions_after_gst, 10U);
  ASSERT_TRUE(measures.latency_first.has_value());
  ASSERT_TRUE(measures.comm_eventual.has_value());
  EXPECT_GT(*measures.comm_eventual, 0U);
  EXPECT_GT(measures.total_honest_msgs, 0U);
}

TEST(ClusterTest, InDeltaUnitsFormatting) {
  EXPECT_EQ(in_delta_units(std::nullopt, Duration::millis(10)), "-");
  EXPECT_EQ(in_delta_units(Duration::millis(25), Duration::millis(10)), "2.5 D");
}

TEST(ClusterTest, StartIsIdempotent) {
  Cluster cluster(small_options(12));
  cluster.start();
  cluster.start();  // second call must be a no-op, not a double-start
  cluster.run_for(Duration::seconds(2));
  EXPECT_GT(cluster.metrics().decisions().size(), 0U);
}

}  // namespace
}  // namespace lumiere::runtime
