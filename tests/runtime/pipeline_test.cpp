// VerifyPipeline unit tests: the staged decode+verify worker pool in
// isolation — claims memoized only when they pass, malformed frames
// dropped, bounded-queue backpressure, and stop()/start() as the fault
// schedule uses them. The full-stack path is tests/transport/
// tcp_pipeline_test.cpp.
#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"

namespace lumiere::runtime {
namespace {

using namespace std::chrono_literals;

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;

  PipelineTest() : auth_(crypto::make_authenticator(crypto::kDefaultScheme, kN, 5)) {}

  [[nodiscard]] MessageCodec codec() const {
    MessageCodec codec;
    consensus::register_consensus_messages(codec);
    pacemaker::register_pacemaker_messages(codec);
    codec.set_sig_wire(auth_->wire_spec());
    return codec;
  }

  [[nodiscard]] std::vector<std::uint8_t> view_msg_frame(ProcessId signer, View v) const {
    const pacemaker::ViewMsg msg(
        v, crypto::threshold_share(auth_->signer_for(signer), pacemaker::view_msg_statement(v)));
    return MessageCodec::encode(msg);
  }

  /// Polls drain() until `want` results arrived or ~2s passed.
  template <typename Fn>
  std::size_t drain_until(VerifyPipeline& pipeline, std::size_t want, Fn&& fn) {
    std::size_t got = 0;
    for (int spin = 0; spin < 2000 && got < want; ++spin) {
      got += pipeline.drain(fn);
      if (got < want) std::this_thread::sleep_for(1ms);
    }
    return got;
  }

  std::unique_ptr<crypto::Authenticator> auth_;
};

TEST_F(PipelineTest, ValidClaimsComeBackFingerprinted) {
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 2, 64});
  pipeline.start();
  const auto frame = view_msg_frame(/*signer=*/1, /*v=*/3);
  ASSERT_TRUE(pipeline.submit(2, frame));

  std::vector<VerifyPipeline::Result> results;
  ASSERT_EQ(drain_until(pipeline, 1, [&](auto&& r) { results.push_back(std::move(r)); }), 1U);
  EXPECT_EQ(results[0].from, 2U);
  ASSERT_NE(results[0].msg, nullptr);
  EXPECT_EQ(results[0].msg->type_id(), pacemaker::kViewMsg);
  // The share the frame carries verified, so its fingerprint is reported
  // (this is what the driver thread feeds the node's VerifyMemo).
  const auto& vm = static_cast<const pacemaker::ViewMsg&>(*results[0].msg);
  ASSERT_EQ(results[0].fingerprints.size(), 1U);
  EXPECT_EQ(results[0].fingerprints[0],
            crypto::share_fingerprint(pacemaker::view_msg_statement(3), vm.share()));

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.frames_in, 1U);
  EXPECT_EQ(stats.frames_out, 1U);
  EXPECT_EQ(stats.claims_checked, 1U);
  EXPECT_EQ(stats.claims_passed, 1U);
  pipeline.stop();
}

TEST_F(PipelineTest, FailedClaimsAreNotMemoized) {
  // A message whose signature does not verify still comes out of the
  // pipeline (the core makes the accept/reject call) but with no
  // fingerprint — the memo never whitelists a bad claim.
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 1, 64});
  pipeline.start();
  pacemaker::ViewMsg forged(
      7, crypto::PartialSig{2, crypto::SigBytes::zeros(auth_->wire_spec().sig_bytes)});
  ASSERT_TRUE(pipeline.submit(1, MessageCodec::encode(forged)));

  std::vector<VerifyPipeline::Result> results;
  ASSERT_EQ(drain_until(pipeline, 1, [&](auto&& r) { results.push_back(std::move(r)); }), 1U);
  ASSERT_NE(results[0].msg, nullptr);
  EXPECT_TRUE(results[0].fingerprints.empty());
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.claims_checked, 1U);
  EXPECT_EQ(stats.claims_passed, 0U);
  pipeline.stop();
}

TEST_F(PipelineTest, MalformedFramesAreCountedAndDropped) {
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 1, 64});
  pipeline.start();
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0x00, 0x00, 0xAB, 0xCD};
  ASSERT_TRUE(pipeline.submit(3, garbage));
  // A well-formed frame after it proves the worker survived the garbage.
  ASSERT_TRUE(pipeline.submit(1, view_msg_frame(1, 9)));
  std::size_t delivered = drain_until(pipeline, 1, [](auto&&) {});
  EXPECT_EQ(delivered, 1U);
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.decode_failures, 1U);
  EXPECT_EQ(stats.frames_in, 2U);
  EXPECT_EQ(stats.frames_out, 1U);
  pipeline.stop();
}

TEST_F(PipelineTest, SubmitRejectsWhenStopped) {
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 1, 4});
  const auto frame = view_msg_frame(0, 1);
  EXPECT_FALSE(pipeline.submit(1, frame)) << "not started yet";
  EXPECT_FALSE(pipeline.try_submit(1, frame));
  pipeline.start();
  EXPECT_TRUE(pipeline.running());
  pipeline.stop();
  EXPECT_FALSE(pipeline.running());
  EXPECT_FALSE(pipeline.submit(1, frame)) << "stopped again";
}

TEST_F(PipelineTest, BackpressureBlocksThenDrains) {
  // Capacity 1 with a single worker: a burst from the submitting thread
  // outruns decode+verify, so submit() must hit the full queue and block
  // rather than grow memory — and every accepted frame still comes out.
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 1, 1});
  pipeline.start();
  constexpr int kBurst = 256;
  const auto frame = view_msg_frame(2, 5);
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(pipeline.submit(1, frame));
  }
  std::size_t delivered = drain_until(pipeline, kBurst, [](auto&&) {});
  EXPECT_EQ(delivered, static_cast<std::size_t>(kBurst));
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.frames_in, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(stats.frames_out, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(stats.submit_blocks, 0U) << "burst never saw backpressure with capacity 1";
  pipeline.stop();
}

TEST_F(PipelineTest, StopUnblocksAPendingSubmit) {
  // The crash path: a socket thread stuck in submit() backpressure must
  // be released (with submit returning false) when the fault schedule
  // stops the pool, or stop() would deadlock against it.
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 1, 1});
  pipeline.start();
  const auto frame = view_msg_frame(0, 2);
  // Fill: the queue holds 1; keep the worker busy long enough by feeding
  // more frames from a second thread until one observably blocks.
  std::atomic<int> accepted{0};
  std::atomic<bool> done{false};
  std::thread submitter([&] {
    for (int i = 0; i < 100000; ++i) {
      if (!pipeline.submit(1, frame)) break;  // released by stop()
      accepted.fetch_add(1);
    }
    done.store(true);
  });
  std::this_thread::sleep_for(20ms);
  pipeline.stop();
  submitter.join();
  EXPECT_TRUE(done.load());
  pipeline.drain([](auto&&) {});  // discard whatever completed

  // Restart (the recover path): the pool processes new frames again.
  pipeline.start();
  ASSERT_TRUE(pipeline.submit(1, view_msg_frame(1, 8)));
  EXPECT_EQ(drain_until(pipeline, 1, [](auto&&) {}), 1U);
  pipeline.stop();
}

TEST_F(PipelineTest, StopStartCycleSurvivesQueuedFrames) {
  VerifyPipeline pipeline(auth_.get(), codec(), PipelineSpec{true, 2, 128});
  for (int cycle = 0; cycle < 3; ++cycle) {
    pipeline.start();
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(pipeline.submit(0, view_msg_frame(i % kN, cycle * 16 + i)));
    }
    pipeline.stop();  // in-flight frames may be discarded, never leaked
    EXPECT_FALSE(pipeline.running());
  }
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.frames_in, 48U);
  EXPECT_LE(stats.frames_out, stats.frames_in);
}

}  // namespace
}  // namespace lumiere::runtime
