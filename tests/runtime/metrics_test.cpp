#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

#include "pacemaker/messages.h"

namespace lumiere::runtime {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : metrics_(4, {false, false, false, true}) {}  // p3 Byzantine

  void send(TimePoint at, ProcessId from, ProcessId to) {
    const pacemaker::ViewMsg msg(
        1, crypto::threshold_share(auth_->signer_for(from), pacemaker::view_msg_statement(1)));
    metrics_.on_send(at, from, to, msg);
  }

  std::unique_ptr<crypto::Authenticator> auth_ =
      crypto::make_authenticator(crypto::kDefaultScheme, 4, 3);
  MetricsCollector metrics_;
};

TEST_F(MetricsTest, CountsHonestSendsOnly) {
  send(TimePoint(10), 0, 1);
  send(TimePoint(11), 3, 1);  // Byzantine sender: not counted
  send(TimePoint(12), 1, 1);  // self-send: not counted
  send(TimePoint(13), 2, 0);
  EXPECT_EQ(metrics_.total_honest_msgs(), 2U);
  EXPECT_EQ(metrics_.pacemaker_msgs(), 2U);
  EXPECT_EQ(metrics_.consensus_msgs(), 0U);
  EXPECT_EQ(metrics_.count_for_type(pacemaker::kViewMsg), 2U);
  EXPECT_GT(metrics_.total_honest_bytes(), 0U);
}

TEST_F(MetricsTest, BroadcastChargeEqualsPerSendExpansion) {
  // The bulk on_broadcast path must account exactly like n-1 on_send
  // calls — totals, per-type, per-class, and window queries.
  MetricsCollector bulk(4, {false, false, false, true});
  const pacemaker::ViewMsg msg(
      1, crypto::threshold_share(auth_->signer_for(0), pacemaker::view_msg_statement(1)));
  for (ProcessId to = 0; to < 4; ++to) metrics_.on_send(TimePoint(10), 0, to, msg);
  bulk.on_broadcast(TimePoint(10), 0, msg, 4);
  EXPECT_EQ(bulk.total_honest_msgs(), metrics_.total_honest_msgs());
  EXPECT_EQ(bulk.total_honest_bytes(), metrics_.total_honest_bytes());
  EXPECT_EQ(bulk.pacemaker_msgs(), metrics_.pacemaker_msgs());
  EXPECT_EQ(bulk.count_for_type(pacemaker::kViewMsg), 3U);
  EXPECT_EQ(bulk.msgs_between(TimePoint(10), TimePoint(11)),
            metrics_.msgs_between(TimePoint(10), TimePoint(11)));
  EXPECT_EQ(bulk.msgs_between(TimePoint(0), TimePoint(10)), 0U);

  // Byzantine broadcasters stay uncounted, as with per-send charging.
  bulk.on_broadcast(TimePoint(12), 3, msg, 4);
  EXPECT_EQ(bulk.total_honest_msgs(), 3U);
}

TEST_F(MetricsTest, DecisionLogAndWindows) {
  send(TimePoint(5), 0, 1);
  send(TimePoint(6), 0, 2);
  metrics_.record_qc_formed(TimePoint(10), 0, 0);  // decision 1 after 2 msgs
  send(TimePoint(15), 1, 2);
  send(TimePoint(16), 1, 0);
  send(TimePoint(17), 2, 0);
  metrics_.record_qc_formed(TimePoint(20), 1, 1);  // decision 2 after 3 more
  send(TimePoint(25), 2, 1);
  metrics_.record_qc_formed(TimePoint(40), 2, 2);  // decision 3 after 1 more

  ASSERT_EQ(metrics_.decisions().size(), 3U);
  EXPECT_EQ(metrics_.decisions()[0].msgs_before, 2U);
  EXPECT_EQ(metrics_.decisions()[1].msgs_before, 5U);

  // Latency to first decision from t=0: 10.
  const auto lat = metrics_.latency_to_first_decision(TimePoint::origin());
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, Duration(10));

  // Max inter-decision gap: 40 - 20 = 20.
  const auto gap = metrics_.max_decision_gap(TimePoint::origin());
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, Duration(20));

  // Max msg gap: decision2 - decision1 = 3 messages.
  const auto msg_gap = metrics_.max_msg_gap(TimePoint::origin());
  ASSERT_TRUE(msg_gap.has_value());
  EXPECT_EQ(*msg_gap, 3U);

  // Warmup skips the first window: max over remaining = 1.
  EXPECT_EQ(metrics_.max_msg_gap(TimePoint::origin(), 1).value(), 1U);
}

TEST_F(MetricsTest, ByzantineLeaderQcIsNotADecision) {
  metrics_.record_qc_formed(TimePoint(10), 5, 3);  // p3 is Byzantine
  EXPECT_TRUE(metrics_.decisions().empty());
}

TEST_F(MetricsTest, MsgsBetween) {
  send(TimePoint(10), 0, 1);
  send(TimePoint(20), 0, 1);
  send(TimePoint(30), 0, 1);
  EXPECT_EQ(metrics_.msgs_between(TimePoint(0), TimePoint(15)), 1U);
  EXPECT_EQ(metrics_.msgs_between(TimePoint(10), TimePoint(30)), 2U)
      << "[10, 30): includes the sends at 10 and 20, excludes the one at 30";
  EXPECT_EQ(metrics_.msgs_between(TimePoint(0), TimePoint(31)), 3U);
  EXPECT_EQ(metrics_.msgs_between(TimePoint(40), TimePoint(50)), 0U);
}

TEST_F(MetricsTest, FirstDecisionIndexAfter) {
  metrics_.record_qc_formed(TimePoint(10), 0, 0);
  metrics_.record_qc_formed(TimePoint(20), 1, 1);
  EXPECT_EQ(metrics_.first_decision_index_after(TimePoint(0)), 0U);
  EXPECT_EQ(metrics_.first_decision_index_after(TimePoint(10)), 0U);
  EXPECT_EQ(metrics_.first_decision_index_after(TimePoint(11)), 1U);
  EXPECT_EQ(metrics_.first_decision_index_after(TimePoint(21)), 2U);
  EXPECT_FALSE(metrics_.latency_to_first_decision(TimePoint(21)).has_value());
}

TEST_F(MetricsTest, EmptyCollectorEdgeCases) {
  EXPECT_FALSE(metrics_.latency_to_first_decision(TimePoint::origin()).has_value());
  EXPECT_FALSE(metrics_.max_decision_gap(TimePoint::origin()).has_value());
  EXPECT_FALSE(metrics_.max_msg_gap(TimePoint::origin()).has_value());
  EXPECT_FALSE(metrics_.msgs_to_first_decision(TimePoint::origin()).has_value());
  EXPECT_EQ(metrics_.msgs_between(TimePoint(0), TimePoint(100)), 0U);
}

TEST_F(MetricsTest, RecordingWindowBracketsThreadedSlices) {
  metrics_.enable_threaded();
  EXPECT_FALSE(metrics_.recording_window_open());

  metrics_.begin_recording_window();
  EXPECT_TRUE(metrics_.recording_window_open());
  send(TimePoint(10), 0, 1);  // recording during the window is the point
  metrics_.end_recording_window();
  EXPECT_FALSE(metrics_.recording_window_open());

  // Between slices, queries replay the captured events.
  EXPECT_EQ(metrics_.total_honest_msgs(), 1U);

  // A second slice appends to the same stream.
  metrics_.begin_recording_window();
  send(TimePoint(20), 2, 0);
  metrics_.end_recording_window();
  EXPECT_EQ(metrics_.total_honest_msgs(), 2U);
  EXPECT_EQ(metrics_.msgs_between(TimePoint(0), TimePoint(15)), 1U);
}

TEST_F(MetricsTest, QueryDuringLiveWindowAborts) {
  metrics_.enable_threaded();
  metrics_.begin_recording_window();
  // The documented footgun, now fatal instead of a silent data race: log
  // references returned mid-slice would dangle on the next merge.
  EXPECT_DEATH((void)metrics_.total_honest_msgs(), "queried during a live TCP run_for slice");
}

}  // namespace
}  // namespace lumiere::runtime
