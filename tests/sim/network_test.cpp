#include "sim/network.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/delay_policy.h"

namespace lumiere::sim {
namespace {

/// A trivial message for transport tests.
class PingMsg final : public Message {
 public:
  explicit PingMsg(std::uint32_t value) : value_(value) {}
  [[nodiscard]] std::uint32_t value() const { return value_; }
  std::uint32_t type_id() const override { return 0x3001; }
  const char* type_name() const override { return "ping"; }
  MsgClass msg_class() const override { return MsgClass::kPacemaker; }
  std::size_t wire_size() const override { return 4; }
  void serialize(ser::Writer& w) const override { w.u32(value_); }

 private:
  std::uint32_t value_;
};

struct Delivery {
  TimePoint at;
  ProcessId from;
  ProcessId to;
};

class NetworkTest : public ::testing::Test {
 protected:
  void build(TimePoint gst, Duration delta, std::shared_ptr<DelayPolicy> policy) {
    net_ = std::make_unique<Network>(&sim_, 4, gst, delta, std::move(policy), 7);
    for (ProcessId id = 0; id < 4; ++id) {
      net_->register_endpoint(id, [this, id](ProcessId from, const MessagePtr&) {
        log_.push_back(Delivery{sim_.now(), from, id});
      });
    }
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<Delivery> log_;
};

TEST_F(NetworkTest, FixedDelayDelivers) {
  build(TimePoint::origin(), Duration::millis(10), std::make_shared<FixedDelay>(Duration(100)));
  net_->send(0, 1, std::make_shared<PingMsg>(1));
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].at, TimePoint(100));
  EXPECT_EQ(log_[0].from, 0U);
  EXPECT_EQ(log_[0].to, 1U);
}

TEST_F(NetworkTest, NullPolicyMeansWorstCaseBound) {
  // With no policy every message arrives exactly at max(GST, t) + Delta.
  build(TimePoint(1000), Duration(50), nullptr);
  net_->send(0, 1, std::make_shared<PingMsg>(1));  // sent at t=0 < GST
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].at, TimePoint(1050)) << "pre-GST send arrives at GST + Delta";
}

TEST_F(NetworkTest, PostGstClampToDelta) {
  // Policy proposes a huge delay; network must clamp to t + Delta.
  build(TimePoint::origin(), Duration(50),
        std::make_shared<FixedDelay>(Duration::seconds(100)));
  sim_.run_until(TimePoint(200));
  net_->send(2, 3, std::make_shared<PingMsg>(9));
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].at, TimePoint(250)) << "partial synchrony: delivery by t + Delta";
}

TEST_F(NetworkTest, SelfSendImmediate) {
  build(TimePoint::origin(), Duration(50), std::make_shared<FixedDelay>(Duration(100)));
  sim_.run_until(TimePoint(10));
  net_->send(1, 1, std::make_shared<PingMsg>(2));
  sim_.run_until(TimePoint(10));
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].at, TimePoint(10)) << "self messages are received immediately";
}

TEST_F(NetworkTest, BroadcastReachesAllIncludingSelf) {
  build(TimePoint::origin(), Duration(50), std::make_shared<FixedDelay>(Duration(5)));
  net_->broadcast(2, std::make_shared<PingMsg>(3));
  sim_.run_until_idle();
  EXPECT_EQ(log_.size(), 4U);
  std::map<ProcessId, int> per_dest;
  for (const auto& d : log_) ++per_dest[d.to];
  for (ProcessId id = 0; id < 4; ++id) EXPECT_EQ(per_dest[id], 1);
}

TEST_F(NetworkTest, SelfSendsNotCountedAsTraffic) {
  build(TimePoint::origin(), Duration(50), std::make_shared<FixedDelay>(Duration(5)));
  net_->broadcast(0, std::make_shared<PingMsg>(1));
  sim_.run_until_idle();
  EXPECT_EQ(net_->total_messages(), 3U) << "n-1 network messages per broadcast";
}

TEST_F(NetworkTest, DisconnectDropsTraffic) {
  build(TimePoint::origin(), Duration(50), std::make_shared<FixedDelay>(Duration(5)));
  net_->disconnect(3);
  net_->send(0, 3, std::make_shared<PingMsg>(1));  // to disconnected
  net_->send(3, 0, std::make_shared<PingMsg>(2));  // from disconnected
  sim_.run_until_idle();
  EXPECT_TRUE(log_.empty());
}

TEST_F(NetworkTest, ObserverSeesSendsAndDeliveries) {
  struct Counter : NetworkObserver {
    int sends = 0;
    int delivers = 0;
    void on_send(TimePoint, ProcessId, ProcessId, const Message&) override { ++sends; }
    void on_deliver(TimePoint, ProcessId, ProcessId, const Message&) override { ++delivers; }
  } counter;
  build(TimePoint::origin(), Duration(50), std::make_shared<FixedDelay>(Duration(5)));
  net_->set_observer(&counter);
  net_->broadcast(1, std::make_shared<PingMsg>(4));
  sim_.run_until_idle();
  EXPECT_EQ(counter.sends, 4);
  EXPECT_EQ(counter.delivers, 4);
}

TEST_F(NetworkTest, PreGstChaosStillRespectsEnvelope) {
  const TimePoint gst(10'000);
  build(gst, Duration(100),
        std::make_shared<PreGstChaosDelay>(gst, Duration(1), Duration(10), Duration(1'000'000)));
  for (int i = 0; i < 50; ++i) {
    net_->send(0, 1, std::make_shared<PingMsg>(static_cast<std::uint32_t>(i)));
  }
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 50U);
  for (const auto& d : log_) {
    EXPECT_LE(d.at, gst + Duration(100)) << "even chaotic pre-GST sends land by GST + Delta";
  }
}

TEST_F(NetworkTest, UniformDelayWithinRange) {
  build(TimePoint::origin(), Duration(1000),
        std::make_shared<UniformDelay>(Duration(10), Duration(20)));
  for (int i = 0; i < 100; ++i) net_->send(0, 1, std::make_shared<PingMsg>(1));
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 100U);
  for (const auto& d : log_) {
    EXPECT_GE(d.at, TimePoint(10));
    EXPECT_LE(d.at, TimePoint(20));
  }
}

}  // namespace
}  // namespace lumiere::sim
