// The fault-schedule executor at the network layer: partitions park (and
// heal releases), crashes lose, per-link and global delay policies swap
// mid-run, and topology presets draw region-shaped delays.
#include "sim/fault_schedule.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/topology.h"

namespace lumiere::sim {
namespace {

class PingMsg final : public Message {
 public:
  explicit PingMsg(std::uint32_t value) : value_(value) {}
  std::uint32_t type_id() const override { return 0x3001; }
  const char* type_name() const override { return "ping"; }
  MsgClass msg_class() const override { return MsgClass::kPacemaker; }
  std::size_t wire_size() const override { return 4; }
  void serialize(ser::Writer& w) const override { w.u32(value_); }

 private:
  std::uint32_t value_;
};

struct Delivery {
  TimePoint at;
  ProcessId from;
  ProcessId to;
};

class FaultScheduleTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 5;

  void build(std::shared_ptr<DelayPolicy> policy) {
    net_ = std::make_unique<Network>(&sim_, kNodes, TimePoint::origin(), Duration::millis(10),
                                     std::move(policy), 7);
    for (ProcessId id = 0; id < kNodes; ++id) {
      net_->register_endpoint(id, [this, id](ProcessId from, const MessagePtr&) {
        log_.push_back(Delivery{sim_.now(), from, id});
      });
    }
  }

  void send(ProcessId from, ProcessId to) { net_->send(from, to, std::make_shared<PingMsg>(1)); }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<Delivery> log_;
};

TEST_F(FaultScheduleTest, PartitionParksCrossCutTrafficUntilHeal) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_partition({{0, 1, 2}, {3, 4}});
  EXPECT_TRUE(net_->partition_active());

  send(0, 3);  // cross-cut: parks
  send(0, 1);  // in-group: flows
  sim_.run_until(TimePoint(1'000));
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 1U);
  EXPECT_EQ(net_->parked_count(), 1U);

  net_->heal();
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 2U);
  EXPECT_EQ(log_[1].to, 3U);
  // Released as if sent at the heal instant: delivery = heal + delay.
  EXPECT_EQ(log_[1].at, TimePoint(1'000) + Duration(100));
  EXPECT_EQ(net_->parked_count(), 0U);
}

TEST_F(FaultScheduleTest, UngroupedNodesKeepAllLinks) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_partition({{0, 1}, {2, 3}});  // node 4 in no group
  send(4, 0);
  send(4, 2);
  send(0, 4);
  sim_.run_until_idle();
  EXPECT_EQ(log_.size(), 3U) << "a node in no group is cut from nobody";
}

TEST_F(FaultScheduleTest, HealWithoutPartitionIsNoOp) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->heal();
  EXPECT_FALSE(net_->partition_active());
  send(0, 1);
  sim_.run_until_idle();
  EXPECT_EQ(log_.size(), 1U);
}

TEST_F(FaultScheduleTest, CrashLosesTrafficBothWaysAndRecoverReadmits) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_down(2, true);
  send(0, 2);  // arrives while 2 is down: lost
  send(2, 0);  // from a down node: never emitted
  sim_.run_until_idle();
  EXPECT_TRUE(log_.empty());

  net_->set_down(2, false);
  send(0, 2);
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 2U);
}

TEST_F(FaultScheduleTest, CrashWindowEndingBeforeArrivalDoesNotLoseMail) {
  // Down-ness is checked at arrival, like any in-flight message: a crash
  // window that ends before delivery must not destroy traffic (an epoch
  // certificate is never retransmitted).
  build(std::make_shared<FixedDelay>(Duration(100)));
  send(0, 2);              // in flight, arrives at t = 100
  net_->set_down(2, true);
  net_->set_down(2, false);  // recovered before arrival
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 2U);
}

TEST_F(FaultScheduleTest, ParkedMailSurvivesACrashWindowThatEndsBeforeHeal) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_partition({{0, 1, 2}, {3, 4}});
  send(0, 3);  // parks
  send(3, 1);  // parks
  EXPECT_EQ(net_->parked_count(), 2U);
  net_->set_down(3, true);   // churned away mid-partition ...
  net_->set_down(3, false);  // ... and back before the heal
  EXPECT_EQ(net_->parked_count(), 2U) << "parked mail outlives a closed crash window";
  net_->heal();
  sim_.run_until_idle();
  EXPECT_EQ(log_.size(), 2U) << "both endpoints were up at arrival; nothing may be lost";
}

TEST_F(FaultScheduleTest, ParkedMailToAStillDownNodeIsLostAtArrival) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_partition({{0, 1, 2}, {3, 4}});
  send(0, 3);  // parks
  send(3, 1);  // parks
  net_->set_down(3, true);  // still down when the parked mail arrives
  net_->heal();
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U) << "mail to the down node dies at arrival; its old sends deliver";
  EXPECT_EQ(log_[0].to, 1U);
}

TEST_F(FaultScheduleTest, AsymPartitionCutsOneDirectionOnly) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_asym_partition({0, 1}, {3});
  EXPECT_TRUE(net_->asym_partition_active());
  EXPECT_FALSE(net_->partition_active()) << "the layers are independent";

  send(0, 3);  // cut direction: parks
  send(1, 3);  // cut direction: parks
  send(3, 0);  // reverse direction: flows
  send(0, 2);  // uninvolved receiver: flows
  sim_.run_until(TimePoint(1'000));
  ASSERT_EQ(log_.size(), 2U);
  EXPECT_EQ(log_[0].to, 0U);
  EXPECT_EQ(log_[1].to, 2U);
  EXPECT_EQ(net_->parked_count(), 2U);

  // heal releases the parked one-way traffic like any partition.
  net_->heal();
  sim_.run_until_idle();
  EXPECT_FALSE(net_->asym_partition_active());
  ASSERT_EQ(log_.size(), 4U);
  EXPECT_EQ(log_[2].at, TimePoint(1'000) + Duration(100));
  EXPECT_EQ(log_[2].to, 3U);
  EXPECT_EQ(log_[3].to, 3U);
}

TEST_F(FaultScheduleTest, AsymPartitionComposesWithSymmetricCut) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_partition({{0, 1}, {2, 3}});
  net_->set_asym_partition({2}, {3});
  send(2, 3);  // same symmetric side, but the one-way cut parks it
  send(3, 2);  // reverse direction of the asym cut: flows
  send(0, 2);  // symmetric cut: parks
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 2U);
  EXPECT_EQ(net_->parked_count(), 2U);
  net_->heal();  // clears BOTH layers
  sim_.run_until_idle();
  EXPECT_FALSE(net_->partition_active());
  EXPECT_FALSE(net_->asym_partition_active());
  EXPECT_EQ(log_.size(), 3U);
}

TEST_F(FaultScheduleTest, NewAsymCutReplacesTheActiveOne) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_asym_partition({0}, {1});
  net_->set_asym_partition({2}, {3});  // replaces 0 -> 1
  send(0, 1);  // no longer cut
  send(2, 3);  // cut by the replacement
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 1U);
  EXPECT_EQ(net_->parked_count(), 1U);
}

TEST_F(FaultScheduleTest, ApplyDispatchesAsymPartition) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  FaultEvent cut;
  cut.kind = FaultKind::kAsymPartition;
  cut.groups = {{4}, {0, 1}};
  net_->apply(cut);
  EXPECT_TRUE(net_->asym_partition_active());
  send(4, 0);
  send(0, 4);
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].to, 4U);
}

TEST_F(FaultScheduleTest, DelayPolicySwapsMidRun) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  send(0, 1);
  net_->set_delay_policy(std::make_shared<FixedDelay>(Duration(2'000)));
  send(0, 1);
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 2U);
  EXPECT_EQ(log_[0].at, TimePoint(100));
  EXPECT_EQ(log_[1].at, TimePoint(2'000));
}

TEST_F(FaultScheduleTest, LinkDelayOverridesOneDirectedLink) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  net_->set_link_delay(0, 1, std::make_shared<FixedDelay>(Duration(5'000)));
  send(0, 1);  // overridden link
  send(1, 0);  // reverse direction: global policy
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 2U);  // delivered in time order: 1->0 first
  EXPECT_EQ(log_[0].at, TimePoint(100));
  EXPECT_EQ(log_[0].to, 0U);
  EXPECT_EQ(log_[1].at, TimePoint(5'000));
  EXPECT_EQ(log_[1].to, 1U);

  log_.clear();
  net_->set_link_delay(0, 1, nullptr);  // restore the global policy
  send(0, 1);                           // sent at now = 5000 (last delivery)
  sim_.run_until_idle();
  ASSERT_EQ(log_.size(), 1U);
  EXPECT_EQ(log_[0].at, TimePoint(5'000) + Duration(100));
}

TEST_F(FaultScheduleTest, ApplyDispatchesEveryKind) {
  build(std::make_shared<FixedDelay>(Duration(100)));
  FaultEvent cut;
  cut.kind = FaultKind::kPartition;
  cut.groups = {{0, 1, 2}, {3, 4}};
  net_->apply(cut);
  EXPECT_TRUE(net_->partition_active());

  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.node = 4;
  net_->apply(crash);
  EXPECT_TRUE(net_->disconnected(4));

  FaultEvent rejoin;
  rejoin.kind = FaultKind::kRejoin;
  rejoin.node = 4;
  net_->apply(rejoin);
  EXPECT_FALSE(net_->disconnected(4));

  FaultEvent heal_event;
  heal_event.kind = FaultKind::kHeal;
  net_->apply(heal_event);
  EXPECT_FALSE(net_->partition_active());
}

TEST(FaultScheduleDescribeTest, DescribesEventsForTracesAndErrors) {
  FaultEvent event;
  event.at = TimePoint(2'000'000);
  event.kind = FaultKind::kPartition;
  event.groups = {{0, 1}, {2, 3}};
  EXPECT_EQ(FaultSchedule::describe(event), "partition{0 1|2 3} @2000000us");

  FaultEvent crash;
  crash.at = TimePoint::origin();
  crash.kind = FaultKind::kCrash;
  crash.node = 3;
  EXPECT_EQ(FaultSchedule::describe(crash), "crash p3 @0us");

  FaultEvent link;
  link.at = TimePoint(5);
  link.kind = FaultKind::kLinkDelay;
  link.node = 1;
  link.peer = 2;
  EXPECT_EQ(FaultSchedule::describe(link), "link-delay p1->p2 @5us");

  FaultEvent asym;
  asym.at = TimePoint(7);
  asym.kind = FaultKind::kAsymPartition;
  asym.groups = {{0, 1}, {2}};
  EXPECT_EQ(FaultSchedule::describe(asym), "asym-partition{0 1->2} @7us");

  FaultEvent flip;
  flip.at = TimePoint(9);
  flip.kind = FaultKind::kBehaviorChange;
  flip.node = 3;
  flip.behavior = "mute";
  EXPECT_EQ(FaultSchedule::describe(flip), "behavior-change p3 -> mute @9us");
}

TEST(TopologyPresetTest, KnownPresetsResolveAndUnknownNamesExplain) {
  EXPECT_TRUE(has_topology_preset("lan"));
  EXPECT_TRUE(has_topology_preset("wan3"));
  EXPECT_TRUE(has_topology_preset("wan5"));
  EXPECT_FALSE(has_topology_preset("wan9"));
  const std::string msg = unknown_topology_message("wan9");
  EXPECT_NE(msg.find("wan9"), std::string::npos);
  EXPECT_NE(msg.find("wan3"), std::string::npos) << "error must list the registered presets";
}

TEST(TopologyPresetTest, RegionDelaysAreIntraOrInterBand) {
  const TopologyPreset& preset = topology_preset("wan3");
  RegionDelay policy(preset, 7);
  // Round-robin regions: 0 and 3 share region 0; 0 and 1 differ.
  EXPECT_EQ(policy.region_of(0), policy.region_of(3));
  EXPECT_NE(policy.region_of(0), policy.region_of(1));

  Rng rng(11);
  PingMsg msg(0);
  for (int i = 0; i < 64; ++i) {
    const Duration intra = policy.propose_delay(0, 3, msg, TimePoint::origin(), rng);
    EXPECT_GE(intra, preset.intra_lo);
    EXPECT_LE(intra, preset.intra_hi);
    const Duration inter = policy.propose_delay(0, 1, msg, TimePoint::origin(), rng);
    EXPECT_GE(inter, preset.inter[0][1]);
    EXPECT_LE(inter, preset.inter[0][1] + preset.jitter);
  }
  EXPECT_GT(preset.max_delay(), preset.intra_hi);
}

}  // namespace
}  // namespace lumiere::sim
