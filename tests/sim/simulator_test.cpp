#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace lumiere::sim {
namespace {

TEST(SimulatorTest, NowAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  TimePoint seen;
  sim.schedule_at(TimePoint(100), [&] { seen = sim.now(); });
  sim.run_until(TimePoint(200));
  EXPECT_EQ(seen, TimePoint(100));
  EXPECT_EQ(sim.now(), TimePoint(200));
}

TEST(SimulatorTest, ScheduleAfter) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(5), [&] { ++fired; });
  sim.run_for(Duration::millis(4));
  EXPECT_EQ(fired, 0);
  sim.run_for(Duration::millis(1));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilExecutesBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(10), [&] { ++fired; });
  sim.run_until(TimePoint(10));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilIdleWithDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint(10), [&] { ++fired; });
  sim.schedule_at(TimePoint(1000), [&] { ++fired; });
  sim.run_until_idle(TimePoint(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint(100));
  sim.run_until_idle();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, CascadingEventsAtSameInstant) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_at(sim.now(), recurse);
  };
  sim.schedule_at(TimePoint(5), recurse);
  sim.run_until(TimePoint(5));
  EXPECT_EQ(depth, 10) << "same-instant chains must fully drain within run_until";
}

TEST(SimulatorDeathTest, RejectsSchedulingIntoPast) {
  Simulator sim;
  sim.schedule_at(TimePoint(10), [] {});
  sim.run_until(TimePoint(20));
  EXPECT_DEATH(sim.schedule_at(TimePoint(5), [] {}), "past");
}

}  // namespace
}  // namespace lumiere::sim
