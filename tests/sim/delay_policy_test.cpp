#include "sim/delay_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

#include "adversary/delay_adversary.h"
#include "pacemaker/messages.h"

namespace lumiere::sim {
namespace {

class DelayPolicyTest : public ::testing::Test {
 protected:
  MessagePtr sample_msg() {
    return std::make_shared<pacemaker::ViewMsg>(
        1, crypto::threshold_share(auth_->signer_for(0), pacemaker::view_msg_statement(1)));
  }

  std::unique_ptr<crypto::Authenticator> auth_ =
      crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
  Rng rng_{99};
};

TEST_F(DelayPolicyTest, FixedDelayConstant) {
  FixedDelay policy(Duration::millis(3));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.propose_delay(0, 1, *sample_msg(), TimePoint(i), rng_),
              Duration::millis(3));
  }
}

TEST_F(DelayPolicyTest, UniformDelayStaysInRange) {
  UniformDelay policy(Duration::millis(1), Duration::millis(5));
  for (int i = 0; i < 500; ++i) {
    const Duration d = policy.propose_delay(0, 1, *sample_msg(), TimePoint(0), rng_);
    EXPECT_GE(d, Duration::millis(1));
    EXPECT_LE(d, Duration::millis(5));
  }
}

TEST_F(DelayPolicyTest, PreGstChaosSwitchesAtGst) {
  const TimePoint gst(1000);
  PreGstChaosDelay policy(gst, Duration::micros(10), Duration::micros(20),
                          Duration::seconds(10));
  bool saw_chaotic = false;
  for (int i = 0; i < 200; ++i) {
    const Duration pre = policy.propose_delay(0, 1, *sample_msg(), TimePoint(0), rng_);
    if (pre > Duration::micros(20)) saw_chaotic = true;
  }
  EXPECT_TRUE(saw_chaotic) << "pre-GST draws should exceed the post-GST range";
  for (int i = 0; i < 200; ++i) {
    const Duration post = policy.propose_delay(0, 1, *sample_msg(), gst, rng_);
    EXPECT_GE(post, Duration::micros(10));
    EXPECT_LE(post, Duration::micros(20));
  }
}

TEST_F(DelayPolicyTest, WorstCaseProposesMax) {
  adversary::WorstCaseDelay policy;
  EXPECT_EQ(policy.propose_delay(0, 1, *sample_msg(), TimePoint(0), rng_), Duration::max());
}

TEST_F(DelayPolicyTest, TargetedSlowHitsVictimLinksOnly) {
  adversary::TargetedSlowDelay policy({2}, Duration::micros(100));
  EXPECT_EQ(policy.propose_delay(0, 1, *sample_msg(), TimePoint(0), rng_),
            Duration::micros(100));
  EXPECT_EQ(policy.propose_delay(0, 2, *sample_msg(), TimePoint(0), rng_), Duration::max());
  EXPECT_EQ(policy.propose_delay(2, 3, *sample_msg(), TimePoint(0), rng_), Duration::max());
}

TEST_F(DelayPolicyTest, UniformFastIsConstant) {
  adversary::UniformFastDelay policy(Duration::micros(250));
  EXPECT_EQ(policy.propose_delay(3, 1, *sample_msg(), TimePoint(5), rng_),
            Duration::micros(250));
}

}  // namespace
}  // namespace lumiere::sim
