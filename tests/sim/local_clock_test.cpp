// LocalClock implements the paper's lc(p) semantics; these tests pin the
// exact behaviors the protocols rely on (pause/bump/exact-landing alarms).
#include "sim/local_clock.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lumiere::sim {
namespace {

class LocalClockTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(LocalClockTest, AdvancesInRealTime) {
  LocalClock clock(&sim_, TimePoint::origin());
  EXPECT_EQ(clock.reading(), Duration::zero());
  sim_.run_until(TimePoint(500));
  EXPECT_EQ(clock.reading(), Duration(500));
}

TEST_F(LocalClockTest, JoinTimeAnchorsZero) {
  LocalClock clock(&sim_, TimePoint(100));
  EXPECT_EQ(clock.reading(), Duration::zero());
  sim_.run_until(TimePoint(150));
  EXPECT_EQ(clock.reading(), Duration(50));
}

TEST_F(LocalClockTest, PauseHoldsValueAndUnpauseResumes) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(100));
  clock.pause();
  EXPECT_TRUE(clock.paused());
  sim_.run_until(TimePoint(300));
  EXPECT_EQ(clock.reading(), Duration(100));
  clock.unpause();
  sim_.run_until(TimePoint(350));
  EXPECT_EQ(clock.reading(), Duration(150));
}

TEST_F(LocalClockTest, BumpMovesForwardOnly) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(100));
  clock.bump_to(Duration(50));  // backwards: no-op (Lemma 5.2)
  EXPECT_EQ(clock.reading(), Duration(100));
  clock.bump_to(Duration(400));
  EXPECT_EQ(clock.reading(), Duration(400));
  sim_.run_until(TimePoint(150));
  EXPECT_EQ(clock.reading(), Duration(450));
}

TEST_F(LocalClockTest, BumpWhilePausedKeepsPaused) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(10));
  clock.pause();
  clock.bump_to(Duration(200));
  EXPECT_TRUE(clock.paused());
  EXPECT_EQ(clock.reading(), Duration(200));
  sim_.run_until(TimePoint(500));
  EXPECT_EQ(clock.reading(), Duration(200));
  clock.unpause();
  sim_.run_until(TimePoint(600));
  EXPECT_EQ(clock.reading(), Duration(300));
}

TEST_F(LocalClockTest, AlarmFiresOnRealTimeArrival) {
  LocalClock clock(&sim_, TimePoint::origin());
  std::vector<Duration> fired;
  clock.set_alarm(Duration(100), [&] { fired.push_back(clock.reading()); });
  sim_.run_until(TimePoint(99));
  EXPECT_TRUE(fired.empty());
  sim_.run_until(TimePoint(100));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0], Duration(100)) << "alarm fires exactly at the threshold";
}

TEST_F(LocalClockTest, AlarmFiresOnExactLandingBump) {
  LocalClock clock(&sim_, TimePoint::origin());
  int fired = 0;
  clock.set_alarm(Duration(100), [&] { ++fired; });
  sim_.run_until(TimePoint(10));
  clock.bump_to(Duration(100));  // lands exactly: "lc == c_v" is seen
  sim_.run_until(TimePoint(10));  // drain same-instant events
  sim_.run_until(TimePoint(11));
  EXPECT_EQ(fired, 1);
}

TEST_F(LocalClockTest, AlarmSkippedWhenBumpJumpsPast) {
  LocalClock clock(&sim_, TimePoint::origin());
  int fired = 0;
  clock.set_alarm(Duration(100), [&] { ++fired; });
  clock.bump_to(Duration(150));  // jumps past: "lc == 100" never seen
  sim_.run_until(TimePoint(500));
  EXPECT_EQ(fired, 0);
}

TEST_F(LocalClockTest, AlarmAtCurrentReadingFiresImmediately) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(40));
  int fired = 0;
  clock.set_alarm(Duration(40), [&] { ++fired; });
  sim_.run_until(TimePoint(40));
  EXPECT_EQ(fired, 1);
}

TEST_F(LocalClockTest, AlarmInPastNeverFires) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(50));
  int fired = 0;
  const AlarmId id = clock.set_alarm(Duration(10), [&] { ++fired; });
  EXPECT_EQ(id, 0U);
  sim_.run_until(TimePoint(500));
  EXPECT_EQ(fired, 0);
}

TEST_F(LocalClockTest, AlarmsDormantWhilePaused) {
  LocalClock clock(&sim_, TimePoint::origin());
  int fired = 0;
  clock.set_alarm(Duration(100), [&] { ++fired; });
  sim_.run_until(TimePoint(50));
  clock.pause();
  sim_.run_until(TimePoint(1000));
  EXPECT_EQ(fired, 0) << "paused clock never reaches the threshold";
  clock.unpause();  // resumes at 50; alarm due at sim time 1050
  sim_.run_until(TimePoint(1049));
  EXPECT_EQ(fired, 0);
  sim_.run_until(TimePoint(1050));
  EXPECT_EQ(fired, 1);
}

TEST_F(LocalClockTest, AlarmWhilePausedAtThresholdFires) {
  LocalClock clock(&sim_, TimePoint::origin());
  sim_.run_until(TimePoint(70));
  clock.pause();
  int fired = 0;
  clock.set_alarm(Duration(70), [&] { ++fired; });
  sim_.run_until(TimePoint(71));
  EXPECT_EQ(fired, 1) << "lc == threshold holds now, even while paused";
}

TEST_F(LocalClockTest, CancelAlarm) {
  LocalClock clock(&sim_, TimePoint::origin());
  int fired = 0;
  const AlarmId id = clock.set_alarm(Duration(100), [&] { ++fired; });
  clock.cancel_alarm(id);
  sim_.run_until(TimePoint(200));
  EXPECT_EQ(fired, 0);
}

TEST_F(LocalClockTest, MultipleAlarmsFireInThresholdOrder) {
  LocalClock clock(&sim_, TimePoint::origin());
  std::vector<int> order;
  clock.set_alarm(Duration(200), [&] { order.push_back(2); });
  clock.set_alarm(Duration(100), [&] { order.push_back(1); });
  clock.set_alarm(Duration(300), [&] { order.push_back(3); });
  sim_.run_until(TimePoint(400));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(LocalClockTest, BumpLandingFiresOnlyThatThreshold) {
  LocalClock clock(&sim_, TimePoint::origin());
  std::vector<int> order;
  clock.set_alarm(Duration(100), [&] { order.push_back(1); });
  clock.set_alarm(Duration(200), [&] { order.push_back(2); });
  clock.bump_to(Duration(200));  // jumps past 100, lands on 200
  sim_.run_until(TimePoint(1));
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_F(LocalClockTest, AlarmHandlerCanBumpSafely) {
  LocalClock clock(&sim_, TimePoint::origin());
  std::vector<Duration> readings;
  clock.set_alarm(Duration(100), [&] {
    readings.push_back(clock.reading());
    clock.bump_to(Duration(500));
  });
  clock.set_alarm(Duration(300), [&] { readings.push_back(clock.reading()); });
  sim_.run_until(TimePoint(1000));
  ASSERT_EQ(readings.size(), 1U) << "300 was jumped past by the handler's bump";
  EXPECT_EQ(readings[0], Duration(100));
}

TEST_F(LocalClockTest, TimeForInvertsReading) {
  LocalClock clock(&sim_, TimePoint(25));
  sim_.run_until(TimePoint(50));
  EXPECT_EQ(clock.time_for(Duration(100)), TimePoint(125));
}

// ---- bounded drift (the Section 2/4 remark) --------------------------

TEST_F(LocalClockTest, FastClockReadsAheadOfRealTime) {
  LocalClock clock(&sim_, TimePoint::origin(), /*drift_ppm=*/100'000);  // +10%
  sim_.run_until(TimePoint(1'000'000));
  EXPECT_EQ(clock.reading(), Duration(1'100'000));
}

TEST_F(LocalClockTest, SlowClockReadsBehindRealTime) {
  LocalClock clock(&sim_, TimePoint::origin(), /*drift_ppm=*/-100'000);  // -10%
  sim_.run_until(TimePoint(1'000'000));
  EXPECT_EQ(clock.reading(), Duration(900'000));
}

TEST_F(LocalClockTest, DriftedAlarmFiresWhenClockValueReachesThreshold) {
  LocalClock fast(&sim_, TimePoint::origin(), 100'000);
  LocalClock slow(&sim_, TimePoint::origin(), -100'000);
  TimePoint fast_fired = TimePoint(-1);
  TimePoint slow_fired = TimePoint(-1);
  fast.set_alarm(Duration(1'100'000), [&] { fast_fired = sim_.now(); });
  slow.set_alarm(Duration(900'000), [&] { slow_fired = sim_.now(); });
  sim_.run_until(TimePoint(2'000'000));
  // The +10% clock reaches 1.1s of clock value at 1.0s of real time; the
  // -10% clock reaches 0.9s of clock value at the same real instant.
  EXPECT_EQ(fast_fired, TimePoint(1'000'000));
  EXPECT_EQ(slow_fired, TimePoint(1'000'000));
}

TEST_F(LocalClockTest, BumpReAnchorsExactlyUnderDrift) {
  // Protocol thresholds (c_v) must be hit exactly even on drifted clocks:
  // a bump to a value re-anchors the clock at that exact value.
  LocalClock clock(&sim_, TimePoint::origin(), 333);  // awkward rate
  sim_.run_until(TimePoint(777));
  clock.bump_to(Duration(10'000));
  EXPECT_EQ(clock.reading(), Duration(10'000));
  int fired = 0;
  clock.set_alarm(Duration(10'000), [&] { ++fired; });
  sim_.run_until(sim_.now() + Duration(1));
  EXPECT_EQ(fired, 1) << "lc == threshold holds at the re-anchored value";
}

TEST_F(LocalClockTest, PauseUnpausePreservesValueUnderDrift) {
  LocalClock clock(&sim_, TimePoint::origin(), 50'000);  // +5%
  sim_.run_until(TimePoint(1'000));
  const Duration at_pause = clock.reading();
  clock.pause();
  sim_.run_until(TimePoint(5'000));
  EXPECT_EQ(clock.reading(), at_pause);
  clock.unpause();
  sim_.run_until(TimePoint(6'000));
  // Advances at the drifted rate from the held value.
  EXPECT_EQ(clock.reading(), at_pause + Duration(1'050));
}

TEST_F(LocalClockTest, DriftedAlarmsNeverLivelock) {
  // Rounding in the rate arithmetic must not reschedule a wakeup at its
  // own instant forever: every alarm fires exactly once and the queue
  // drains.
  for (const std::int64_t ppm : {-99'999LL, -7LL, 1LL, 13LL, 99'999LL}) {
    Simulator sim;
    LocalClock clock(&sim, TimePoint::origin(), ppm);
    int fired = 0;
    for (int i = 1; i <= 50; ++i) {
      clock.set_alarm(Duration(i * 997), [&] { ++fired; });
    }
    sim.run_until_idle(TimePoint(100'000'000));
    EXPECT_EQ(fired, 50) << "ppm = " << ppm;
    EXPECT_TRUE(sim.idle());
  }
}

TEST_F(LocalClockTest, DriftAccessorsReportConfiguredRate) {
  LocalClock clock(&sim_, TimePoint::origin(), -1234);
  EXPECT_EQ(clock.drift_ppm(), -1234);
  LocalClock perfect(&sim_, TimePoint::origin());
  EXPECT_EQ(perfect.drift_ppm(), 0);
}

}  // namespace
}  // namespace lumiere::sim
