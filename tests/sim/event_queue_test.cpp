#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

// Global allocation counter, used to pin the queue's zero-steady-state-
// allocation property. Counting is always on (it is one relaxed atomic
// increment); tests snapshot the counter around the region under test.
//
// GCC pairs `new` expressions it inlines with the DEFAULT operator
// delete and flags the replacement below as mismatched; the replacement
// pair is self-consistent (malloc in new, free in delete), so the
// warning is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace lumiere::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(30), [&] { order.push_back(3); });
  q.schedule(TimePoint(10), [&] { order.push_back(1); });
  q.schedule(TimePoint(20), [&] { order.push_back(2); });
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint(7), [&order, i] { order.push_back(i); });
  }
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancellationSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint(5), [&] { ++fired; });
  q.schedule(TimePoint(6), [&] { ++fired; });
  h.cancel();
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint(1), [&] { ++fired; });
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(at, fn));
  fn();
  h.cancel();  // must not crash or corrupt
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  h.cancel();  // no-op
}

TEST(EventQueueTest, ActiveReflectsState) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint(1), [] {});
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
}

TEST(EventQueueTest, EmptyAtOrBefore) {
  EventQueue q;
  q.schedule(TimePoint(10), [] {});
  EXPECT_TRUE(q.empty_at_or_before(TimePoint(9)));
  EXPECT_FALSE(q.empty_at_or_before(TimePoint(10)));
  EXPECT_EQ(q.next_time(), TimePoint(10));
}

TEST(EventQueueTest, PopMovesMoveOnlyCallables) {
  // EventFn is move-only capable and pop() must move the callable out of
  // its slot — a copying pop would fail to compile against this capture.
  EventQueue q;
  auto token = std::make_unique<int>(41);
  int result = 0;
  q.schedule(TimePoint(1), [token = std::move(token), &result] { result = *token + 1; });
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(at, fn));
  fn();
  EXPECT_EQ(result, 42);
}

TEST(EventQueueTest, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires, its slot recycles; a generation-counted handle
  // kept from the first event must not cancel (or report active for) the
  // event now occupying the same slot.
  EventQueue q;
  EventHandle first = q.schedule(TimePoint(1), [] {});
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(at, fn));
  fn();
  EXPECT_FALSE(first.active());

  int fired = 0;
  q.schedule(TimePoint(2), [&] { ++fired; });  // reuses the freed slot
  first.cancel();                              // stale: must be a no-op
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, HandleOutlivesQueueSafely) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(TimePoint(1), [] {});
    EXPECT_TRUE(h.active());
  }
  EXPECT_FALSE(h.active());
  h.cancel();  // must not touch freed memory (ASan job enforces)
}

TEST(EventQueueTest, SteadyStateScheduleAndPopIsAllocationFree) {
  EventQueue q;
  TimePoint at;
  EventFn fn;
  // Warm-up: grow the slot slab, heap and free list to their high-water
  // capacity for this load shape.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 512; ++i) {
      q.schedule(TimePoint(1000 - i), [] {});
    }
    while (q.pop(at, fn)) fn();
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 512; ++i) {
    q.schedule(TimePoint(1000 - i), [] {});
  }
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "the warm schedule/pop cycle must not touch the heap";
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] {
    order.push_back(1);
    q.schedule(TimePoint(2), [&] { order.push_back(2); });
  });
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace lumiere::sim
