#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace lumiere::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(30), [&] { order.push_back(3); });
  q.schedule(TimePoint(10), [&] { order.push_back(1); });
  q.schedule(TimePoint(20), [&] { order.push_back(2); });
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint(7), [&order, i] { order.push_back(i); });
  }
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancellationSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint(5), [&] { ++fired; });
  q.schedule(TimePoint(6), [&] { ++fired; });
  h.cancel();
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(TimePoint(1), [&] { ++fired; });
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(at, fn));
  fn();
  h.cancel();  // must not crash or corrupt
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  h.cancel();  // no-op
}

TEST(EventQueueTest, ActiveReflectsState) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint(1), [] {});
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
}

TEST(EventQueueTest, EmptyAtOrBefore) {
  EventQueue q;
  q.schedule(TimePoint(10), [] {});
  EXPECT_TRUE(q.empty_at_or_before(TimePoint(9)));
  EXPECT_FALSE(q.empty_at_or_before(TimePoint(10)));
  EXPECT_EQ(q.next_time(), TimePoint(10));
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] {
    order.push_back(1);
    q.schedule(TimePoint(2), [&] { order.push_back(2); });
  });
  TimePoint at;
  EventFn fn;
  while (q.pop(at, fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace lumiere::sim
