#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/cluster.h"

namespace lumiere::sim {
namespace {

TEST(TraceLogTest, RecordAndQuery) {
  TraceLog log;
  log.record(TimePoint(10), TraceKind::kViewEntered, 0, 1);
  log.record(TimePoint(20), TraceKind::kQcFormed, 1, 1);
  log.record(TimePoint(30), TraceKind::kViewEntered, 0, 2);
  log.record(TimePoint(40), TraceKind::kCommitted, 2, 0, "genesis child");

  EXPECT_EQ(log.size(), 4U);
  EXPECT_EQ(log.of_kind(TraceKind::kViewEntered).size(), 2U);
  EXPECT_EQ(log.of_kind(TraceKind::kViewEntered, 0).size(), 2U);
  EXPECT_EQ(log.of_kind(TraceKind::kViewEntered, 1).size(), 0U);

  const TraceEvent* qc = log.first_after(TraceKind::kQcFormed, TimePoint(15));
  ASSERT_NE(qc, nullptr);
  EXPECT_EQ(qc->at, TimePoint(20));
  EXPECT_EQ(log.first_after(TraceKind::kQcFormed, TimePoint(21)), nullptr);

  const auto early = log.filtered([](const TraceEvent& e) { return e.at < TimePoint(25); });
  EXPECT_EQ(early.size(), 2U);
}

TEST(TraceLogTest, DumpFormatsAndTruncates) {
  TraceLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(TimePoint(i), TraceKind::kQcFormed, 0, i);
  }
  std::ostringstream os;
  log.dump(os, 3);
  const std::string text = os.str();
  EXPECT_NE(text.find("qc-formed"), std::string::npos);
  EXPECT_NE(text.find("(2 more)"), std::string::npos);
}

TEST(TraceLogTest, ClusterRecordsProtocolEvents) {
  runtime::ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.delay(std::make_shared<FixedDelay>(Duration::millis(1)));
  options.seed(4);
  runtime::Cluster cluster(options);
  cluster.run_for(Duration::seconds(5));

  const TraceLog& trace = cluster.trace();
  EXPECT_FALSE(trace.of_kind(TraceKind::kViewEntered).empty());
  EXPECT_FALSE(trace.of_kind(TraceKind::kQcFormed).empty());
  EXPECT_FALSE(trace.of_kind(TraceKind::kCommitted).empty());

  // Per-node view entries are strictly increasing (condition (1) of the
  // view-synchronization task, read off the trace this time).
  for (ProcessId id = 0; id < 4; ++id) {
    View last = -1;
    for (const auto& event : trace.of_kind(TraceKind::kViewEntered, id)) {
      EXPECT_GT(event.view, last);
      last = event.view;
    }
  }

  // A node's QC for view v must come after it entered view v.
  for (const auto& qc : trace.of_kind(TraceKind::kQcFormed, 0)) {
    bool entered_before = false;
    for (const auto& entry : trace.of_kind(TraceKind::kViewEntered, 0)) {
      if (entry.view == qc.view && entry.at <= qc.at) entered_before = true;
    }
    EXPECT_TRUE(entered_before) << "QC for view " << qc.view << " without prior entry";
  }
}

TEST(TraceLogTest, KindNames) {
  EXPECT_STREQ(to_string(TraceKind::kViewEntered), "view-entered");
  EXPECT_STREQ(to_string(TraceKind::kQcFormed), "qc-formed");
  EXPECT_STREQ(to_string(TraceKind::kCommitted), "committed");
  EXPECT_STREQ(to_string(TraceKind::kSyncStarted), "sync-started");
  EXPECT_STREQ(to_string(TraceKind::kSyncCompleted), "sync-completed");
  EXPECT_STREQ(to_string(TraceKind::kCustom), "custom");
}

TEST(TraceLogTest, BoundedRingEvictsOldestHalf) {
  TraceLog log(8);
  EXPECT_EQ(log.capacity(), 8U);
  for (int i = 0; i < 8; ++i) {
    log.record(TimePoint(i), TraceKind::kViewEntered, 0, i);
  }
  EXPECT_EQ(log.size(), 8U);
  EXPECT_EQ(log.dropped(), 0U);

  // The 9th record trims the oldest capacity/2 + 1 events first.
  log.record(TimePoint(8), TraceKind::kViewEntered, 0, 8);
  EXPECT_EQ(log.size(), 4U);
  EXPECT_EQ(log.dropped(), 5U);
  EXPECT_EQ(log.events().front().view, 5);  // views 0..4 evicted
  EXPECT_EQ(log.events().back().view, 8);

  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.dropped(), 0U);
  EXPECT_EQ(log.capacity(), 8U);
}

TEST(TraceLogTest, ZeroCapacityMeansDefault) {
  TraceLog log(0);
  EXPECT_EQ(log.capacity(), TraceLog::kDefaultCapacity);
}

TEST(TraceLogTest, SoakRunStaysWithinCapacity) {
  TraceLog log(16);
  for (int i = 0; i < 1000; ++i) {
    log.record(TimePoint(i), TraceKind::kQcFormed, 0, i);
  }
  EXPECT_LE(log.size(), 16U);
  EXPECT_EQ(log.size() + log.dropped(), 1000U);
  // The survivors are the most recent window, still in order.
  View last = log.events().front().view - 1;
  for (const TraceEvent& event : log.events()) {
    EXPECT_EQ(event.view, last + 1);
    last = event.view;
  }
  EXPECT_EQ(last, 999);
}

}  // namespace
}  // namespace lumiere::sim
