// BlockSynchronizer unit tests: fetch issue/dedup/retry rotation, the
// responder's linked-segment walk, and the structural verification of
// responses (forged, unlinked, empty and unsolicited chains).
#include "sync/block_sync.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "consensus/block.h"
#include "sync/messages.h"

namespace lumiere::sync {
namespace {

using consensus::Block;
using consensus::QuorumCert;

/// A parent-linked chain b[0] <- b[1] <- ... rooted at genesis. The
/// synchronizer verifies structure only (content addressing), so the
/// genesis QC stands in for every justify.
std::vector<Block> make_chain(std::size_t length) {
  const QuorumCert justify = QuorumCert::genesis(Block::genesis().hash());
  std::vector<Block> chain;
  crypto::Digest parent = Block::genesis().hash();
  for (std::size_t i = 0; i < length; ++i) {
    chain.emplace_back(parent, static_cast<View>(i),
                       std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)}, justify);
    parent = chain.back().hash();
  }
  return chain;
}

/// Harness around one synchronizer: records sends, accepted blocks and
/// armed retry timers; serves lookups from a local map.
struct Harness {
  explicit Harness(ProcessId self = 0, std::uint32_t n = 4) {
    SyncCallbacks cb;
    cb.send = [this](ProcessId to, MessagePtr msg) { sent.emplace_back(to, std::move(msg)); };
    cb.schedule = [this](Duration /*delay*/, std::function<void()> fn) {
      timers.push_back(std::move(fn));
    };
    cb.lookup = [this](const crypto::Digest& hash) -> std::shared_ptr<const Block> {
      const auto it = store.find(hash);
      return it == store.end() ? nullptr : it->second;
    };
    cb.accept = [this](const Block& block) { accepted.push_back(block); };
    sync.emplace(self, n, Duration::millis(20), std::move(cb));
  }

  void hold(const Block& block) { store[block.hash()] = std::make_shared<Block>(block); }

  /// Fires every armed retry timer once (new arms queue for the next call).
  void fire_timers() {
    std::vector<std::function<void()>> due;
    due.swap(timers);
    for (auto& fn : due) fn();
  }

  std::vector<std::pair<ProcessId, MessagePtr>> sent;
  std::vector<std::function<void()>> timers;
  std::vector<Block> accepted;
  std::map<crypto::Digest, std::shared_ptr<const Block>> store;
  std::optional<BlockSynchronizer> sync;
};

TEST(BlockSyncTest, MissingHashIssuesOneFetchAndDedupes) {
  Harness h;
  const auto chain = make_chain(1);
  h.sync->on_missing(chain[0].hash());
  h.sync->on_missing(chain[0].hash());  // already in flight: no second send
  ASSERT_EQ(h.sent.size(), 1U);
  EXPECT_EQ(h.sync->fetches_sent(), 1U);
  EXPECT_EQ(h.sync->pending(), 1U);
  const auto& fetch = static_cast<const BlockFetchMsg&>(*h.sent[0].second);
  EXPECT_EQ(fetch.type_id(), kBlockFetch);
  EXPECT_EQ(fetch.hash(), chain[0].hash());
  EXPECT_NE(h.sent[0].first, ProcessId{0});  // never asks itself
}

TEST(BlockSyncTest, RetryRotatesThroughPeersSkippingSelf) {
  Harness h(/*self=*/1, /*n=*/4);
  const auto chain = make_chain(1);
  h.sync->on_missing(chain[0].hash());
  for (int i = 0; i < 5; ++i) h.fire_timers();
  ASSERT_EQ(h.sent.size(), 6U);
  for (const auto& [to, msg] : h.sent) EXPECT_NE(to, ProcessId{1});
  // Six sends over three usable peers: each asked exactly twice.
  std::map<ProcessId, int> asked;
  for (const auto& [to, msg] : h.sent) ++asked[to];
  EXPECT_EQ(asked.size(), 3U);
  for (const auto& [to, count] : asked) EXPECT_EQ(count, 2) << "peer " << to;
}

TEST(BlockSyncTest, StaleRetryTimerIsHarmlessAfterResolution) {
  Harness h;
  const auto chain = make_chain(1);
  h.sync->on_missing(chain[0].hash());
  h.sync->on_message(2, std::make_shared<BlockRespMsg>(chain[0].hash(),
                                                       std::vector<Block>{chain[0]}));
  EXPECT_EQ(h.sync->pending(), 0U);
  h.fire_timers();  // the armed retry must notice the entry is gone
  EXPECT_EQ(h.sent.size(), 1U);
  EXPECT_EQ(h.sync->fetches_sent(), 1U);
}

TEST(BlockSyncTest, ResponderServesDeepestLastLinkedSegment) {
  Harness h;
  const auto chain = make_chain(3);
  for (const Block& block : chain) h.hold(block);
  h.sync->on_message(2, std::make_shared<BlockFetchMsg>(chain[2].hash(), 8));
  ASSERT_EQ(h.sent.size(), 1U);
  EXPECT_EQ(h.sent[0].first, ProcessId{2});
  const auto& resp = static_cast<const BlockRespMsg&>(*h.sent[0].second);
  EXPECT_EQ(resp.requested(), chain[2].hash());
  // blocks[0] is the requested block, then parents toward genesis.
  ASSERT_EQ(resp.blocks().size(), 3U);
  EXPECT_EQ(resp.blocks()[0].hash(), chain[2].hash());
  EXPECT_EQ(resp.blocks()[1].hash(), chain[1].hash());
  EXPECT_EQ(resp.blocks()[2].hash(), chain[0].hash());
  EXPECT_EQ(h.sync->fetches_served(), 1U);
}

TEST(BlockSyncTest, ResponderHonorsRequesterLimit) {
  Harness h;
  const auto chain = make_chain(5);
  for (const Block& block : chain) h.hold(block);
  h.sync->on_message(3, std::make_shared<BlockFetchMsg>(chain[4].hash(), 2));
  ASSERT_EQ(h.sent.size(), 1U);
  const auto& resp = static_cast<const BlockRespMsg&>(*h.sent[0].second);
  ASSERT_EQ(resp.blocks().size(), 2U);
  EXPECT_EQ(resp.blocks()[0].hash(), chain[4].hash());
  EXPECT_EQ(resp.blocks()[1].hash(), chain[3].hash());
}

TEST(BlockSyncTest, ResponderStaysSilentWithoutTheBlock) {
  Harness h;
  const auto chain = make_chain(1);
  h.sync->on_message(2, std::make_shared<BlockFetchMsg>(chain[0].hash(), 8));
  EXPECT_TRUE(h.sent.empty());  // silence lets the requester's retry rotate
  EXPECT_EQ(h.sync->fetches_served(), 0U);
}

TEST(BlockSyncTest, ForgedResponseIsRejectedAndFetchStaysPending) {
  Harness h;
  const auto chain = make_chain(2);
  h.sync->on_missing(chain[1].hash());
  // A Byzantine peer returns a block that does NOT hash to the request:
  // content addressing makes the forgery self-evident.
  h.sync->on_message(3, std::make_shared<BlockRespMsg>(chain[1].hash(),
                                                       std::vector<Block>{chain[0]}));
  EXPECT_EQ(h.sync->responses_rejected(), 1U);
  EXPECT_TRUE(h.accepted.empty());
  EXPECT_EQ(h.sync->pending(), 1U);  // still outstanding; retries continue
}

TEST(BlockSyncTest, UnlinkedTailIsDroppedLinkedPrefixAcceptedDeepestFirst) {
  Harness h;
  const auto chain = make_chain(3);
  // Genesis-rooted sibling of chain[0] (different payload, so a different
  // hash under content addressing) — NOT chain[1]'s parent.
  const Block stray(Block::genesis().hash(), 0, std::vector<std::uint8_t>{0x77},
                    QuorumCert::genesis(Block::genesis().hash()));
  // [chain[2], chain[1], stray]: the first link holds, the second breaks
  // — only the linked prefix may enter the store.
  h.sync->on_missing(chain[2].hash());
  h.sync->on_message(1, std::make_shared<BlockRespMsg>(
                            chain[2].hash(), std::vector<Block>{chain[2], chain[1], stray}));
  ASSERT_EQ(h.accepted.size(), 2U);
  EXPECT_EQ(h.accepted[0].hash(), chain[1].hash());  // deepest first
  EXPECT_EQ(h.accepted[1].hash(), chain[2].hash());  // requested block last
  EXPECT_EQ(h.sync->blocks_accepted(), 2U);
  EXPECT_EQ(h.sync->pending(), 0U);
}

TEST(BlockSyncTest, UnsolicitedAndEmptyResponsesAreRejected) {
  Harness h;
  const auto chain = make_chain(1);
  h.sync->on_message(2, std::make_shared<BlockRespMsg>(chain[0].hash(),
                                                       std::vector<Block>{chain[0]}));
  EXPECT_EQ(h.sync->responses_rejected(), 1U);  // never asked
  h.sync->on_missing(chain[0].hash());
  h.sync->on_message(2, std::make_shared<BlockRespMsg>(chain[0].hash(), std::vector<Block>{}));
  EXPECT_EQ(h.sync->responses_rejected(), 2U);  // empty answer
  EXPECT_TRUE(h.accepted.empty());
  EXPECT_EQ(h.sync->pending(), 1U);
}

TEST(BlockSyncTest, WireRoundTripPreservesChain) {
  const auto chain = make_chain(2);
  const BlockRespMsg original(chain[1].hash(), std::vector<Block>{chain[1], chain[0]});
  const std::vector<std::uint8_t> frame = MessageCodec::encode(original);
  MessageCodec codec;
  register_sync_messages(codec);
  const MessagePtr decoded = codec.decode(frame);
  ASSERT_NE(decoded, nullptr);
  const auto& resp = static_cast<const BlockRespMsg&>(*decoded);
  ASSERT_EQ(resp.blocks().size(), 2U);
  // Block::deserialize recomputes hashes — equality means content match.
  EXPECT_EQ(resp.requested(), chain[1].hash());
  EXPECT_EQ(resp.blocks()[0], chain[1]);
  EXPECT_EQ(resp.blocks()[1], chain[0]);
}

TEST(BlockSyncTest, OversizedResponseCountIsRejectedAtDecode) {
  const auto chain = make_chain(1);
  // Hand-build a frame claiming more blocks than the cap: the decoder
  // must refuse before attempting the giant allocation.
  ser::Writer w;
  w.u32(kBlockResp);
  w.digest(chain[0].hash());
  w.u32(BlockRespMsg::kMaxBlocksPerResponse + 1);
  MessageCodec codec;
  register_sync_messages(codec);
  EXPECT_EQ(codec.decode(w.data()), nullptr);
}

}  // namespace
}  // namespace lumiere::sync
