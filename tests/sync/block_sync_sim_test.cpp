// Block-sync integration: the same schedule that permanently wedges an
// honest replica without the subsystem commits on every honest replica
// with it enabled.
//
// The wedge is manufactured the way real deployments hit it: a crash
// window. A down processor LOSES the proposals sent while it is down
// (sim::Network delivers only to live endpoints), and peers never
// re-send old blocks — so after recovery the victim's commit walk hits a
// missing ancestor that will never arrive. An equivocator rides along
// (within the f budget) so the recovery happens under the same active
// attack the soak schedule uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"
#include "testutil/oracles.h"

namespace lumiere::runtime {
namespace {

using testutil::oracle_ok;

constexpr std::uint32_t kN = 7;  // f = 2: one equivocator + one crash victim
constexpr ProcessId kEquivocator = 0;
constexpr ProcessId kVictim = 6;
const TimePoint kCrashAt(Duration::seconds(2).ticks());
const TimePoint kRecoverAt(Duration::seconds(6).ticks());
const Duration kRunFor = Duration::seconds(30);

Cluster make_cluster(const std::string& core, bool block_sync) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(kN, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.core(core);
  options.seed(1907);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.behaviors(adversary::byzantine_set(
      {kEquivocator}, [](ProcessId) { return adversary::make_behavior("equivocator"); }));
  options.crash(kVictim, kCrashAt);
  options.recover(kVictim, kRecoverAt);
  if (block_sync) options.block_sync();
  return Cluster(options);
}

class BlockSyncRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(BlockSyncRecovery, CrashVictimWedgesWithoutSyncAndCatchesUpWithIt) {
  // ---- without block sync: the victim stalls forever -----------------
  {
    Cluster cluster = make_cluster(GetParam(), /*block_sync=*/false);
    cluster.run_for(kRunFor);
    EXPECT_TRUE(oracle_ok(fuzz::check_safety(cluster)));
    const consensus::Ledger& victim = cluster.node(kVictim).ledger();
    const consensus::Ledger& peer = cluster.node(1).ledger();
    ASSERT_FALSE(victim.entries().empty()) << "victim must commit before the crash";
    ASSERT_FALSE(peer.entries().empty());
    // Everything the victim ever committed predates the crash: the first
    // post-recovery commit walk hit the lost window and wedged.
    EXPECT_LE(victim.entries().back().committed_at, kCrashAt)
        << GetParam() << ": victim committed after the crash without block sync";
    EXPECT_LT(victim.size(), peer.size());
    EXPECT_GT(peer.entries().back().committed_at, kRecoverAt)
        << "peers must keep committing (the stall is victim-local)";
  }

  // ---- with block sync: same schedule, every honest ledger grows -----
  {
    Cluster cluster = make_cluster(GetParam(), /*block_sync=*/true);
    cluster.run_for(kRunFor);
    EXPECT_TRUE(oracle_ok(fuzz::check_safety(cluster)));
    const consensus::Ledger& victim = cluster.node(kVictim).ledger();
    const consensus::Ledger& peer = cluster.node(1).ledger();
    ASSERT_FALSE(victim.entries().empty());
    EXPECT_GT(victim.entries().back().committed_at, kRecoverAt)
        << GetParam() << ": victim never un-wedged despite block sync";
    // Backfill is full-history: the victim holds the same committed chain
    // as its peers, short at most the commits still in flight at cutoff.
    EXPECT_GE(victim.size() + 5, peer.size());
    const auto* sync = cluster.node(kVictim).synchronizer();
    ASSERT_NE(sync, nullptr);
    EXPECT_GT(sync->blocks_accepted(), 0U)
        << "the catch-up must have come through the sync path";
    EXPECT_EQ(sync->responses_rejected(), 0U);
    // Some peer actually served the backfill.
    std::uint64_t served = 0;
    for (ProcessId id = 0; id < kN; ++id) {
      const auto* s = cluster.node(id).synchronizer();
      if (s != nullptr) served += s->fetches_served();
    }
    EXPECT_GT(served, 0U);
  }
}

INSTANTIATE_TEST_SUITE_P(Cores, BlockSyncRecovery,
                         ::testing::Values("chained-hotstuff", "hotstuff-2"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(BlockSyncRecovery, SyncDisabledLeavesDigestsUntouched) {
  // The knob defaults off, and an off run must be byte-identical to one
  // that never heard of the subsystem: no timers, no messages, no metric
  // charges. Two fresh clusters with the default config must agree on
  // every ledger entry and never instantiate a synchronizer.
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(7);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.node(id).synchronizer(), nullptr);
  }
  EXPECT_EQ(cluster.metrics().sync_msgs(), 0U);
}

}  // namespace
}  // namespace lumiere::runtime
