// The scenario-fuzz engine: a bounded seed sweep (every oracle must pass
// inside the generator's guaranteed-recovery envelope), byte-identical
// determinism, and the greedy shrinker.
#include "fuzz/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "fuzz/oracles.h"
#include "runtime/cluster.h"

namespace lumiere::fuzz {
namespace {

// The sweep's seed range. Deliberately plain 1..N: the same range the CI
// fuzz job and the documentation reference, so a failure here is
// reproducible with `fuzz_repro --seed <k>` verbatim.
constexpr std::uint64_t kSweepFirstSeed = 1;
constexpr std::size_t kSweepCount = 224;

TEST(FuzzSweepTest, TwoHundredSeededScenariosSatisfyEveryOracle) {
  std::set<std::string> combos;
  std::size_t failures = 0;
  for (std::uint64_t seed = kSweepFirstSeed; seed < kSweepFirstSeed + kSweepCount; ++seed) {
    const FuzzCase c = sample_case(seed);
    combos.insert(c.protocol_combo());
    const RunResult result = run_case(c);
    if (!result.ok()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " violated an oracle\n  case: " << describe(c)
                    << "\n  " << result.violations.front()
                    << "\n  replay: fuzz_repro --seed " << seed << " --shrink";
      if (failures >= 3) break;  // enough signal; keep the log readable
    }
  }
  EXPECT_GE(combos.size(), 6U)
      << "the sweep must exercise at least 6 distinct pacemaker x core combinations";
}

TEST(FuzzDeterminismTest, SameSeedReplaysByteIdentically) {
  for (const std::uint64_t seed : {3ULL, 17ULL, 59ULL}) {
    const RunResult first = run_case(sample_case(seed));
    const RunResult second = run_case(sample_case(seed));
    EXPECT_EQ(first.digest, second.digest)
        << "seed " << seed << " produced two different executions";
    EXPECT_EQ(first.violations, second.violations);
  }
}

TEST(FuzzDeterminismTest, DifferentSeedsDiverge) {
  // Sanity on the digest itself: distinct seeds must not collide, or the
  // replay comparison above would be vacuous.
  EXPECT_NE(run_case(sample_case(5)).digest, run_case(sample_case(6)).digest);
}

TEST(FuzzGeneratorTest, SamplingIsPure) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 1000ULL}) {
    EXPECT_EQ(describe(sample_case(seed)), describe(sample_case(seed)));
  }
  EXPECT_NE(describe(sample_case(1)), describe(sample_case(2)));
}

TEST(FuzzGeneratorTest, EverySampledCaseStaysInTheGuaranteedEnvelope) {
  // 400 sampled cases (no runs — this is cheap): the builder validates,
  // events are time-ordered, and the ever-faulty set (Byzantine
  // assignments, scheduled flip-ins, crash/churn victims) never exceeds
  // f — the envelope where post-disruption liveness is a theorem.
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const FuzzCase c = sample_case(seed);
    const std::uint32_t f = (c.n - 1) / 3;

    const auto errors = to_builder(c).validate();
    ASSERT_TRUE(errors.empty()) << "seed " << seed << ": " << errors.front();

    std::set<ProcessId> faulty;
    for (const auto& assignment : c.behaviors) faulty.insert(assignment.node);
    for (std::size_t i = 0; i < c.schedule.events.size(); ++i) {
      const sim::FaultEvent& event = c.schedule.events[i];
      if (i > 0) {
        ASSERT_GE(event.at.ticks(), c.schedule.events[i - 1].at.ticks())
            << "seed " << seed << ": events out of timeline order";
      }
      ASSERT_LE(event.at.ticks(), c.disruption_end_us)
          << "seed " << seed << ": a scripted event postdates disruption_end";
      if (event.kind == sim::FaultKind::kCrash || event.kind == sim::FaultKind::kLeave) {
        faulty.insert(event.node);
      }
      if (event.kind == sim::FaultKind::kBehaviorChange && event.behavior != "honest") {
        faulty.insert(event.node);
      }
    }
    ASSERT_LE(faulty.size(), f) << "seed " << seed << ": over the fault budget";
  }
}

// ---- shrinking -----------------------------------------------------------

/// First seed >= `from` whose sampled case satisfies `want`.
template <typename Pred>
std::uint64_t find_seed(std::uint64_t from, Pred want) {
  for (std::uint64_t seed = from; seed < from + 4'000; ++seed) {
    if (want(sample_case(seed))) return seed;
  }
  ADD_FAILURE() << "no seed matching the sampler predicate — generator drifted?";
  return from;
}

bool has_event(const FuzzCase& c, sim::FaultKind kind) {
  for (const auto& event : c.schedule.events) {
    if (event.kind == kind) return true;
  }
  return false;
}

TEST(FuzzShrinkTest, AlwaysFailingPredicateShrinksToTheEmptyScenario) {
  // With a predicate that "fails" on everything, greedy shrinking must
  // strip the case to its skeleton: no events, no behaviors, no workload,
  // the smallest cluster.
  const std::uint64_t seed = find_seed(1, [](const FuzzCase& c) {
    return c.n > 4 && !c.schedule.events.empty() && !c.behaviors.empty() &&
           c.workload.clients > 0;
  });
  const ShrinkResult result = shrink(seed, [](const FuzzCase&) { return true; });
  EXPECT_TRUE(result.minimal.schedule.events.empty());
  EXPECT_TRUE(result.minimal.behaviors.empty());
  EXPECT_EQ(result.minimal.workload.clients, 0U);
  EXPECT_EQ(result.minimal.n, 4U);
  EXPECT_GT(result.attempts, 1U);
}

TEST(FuzzShrinkTest, KeepsExactlyWhatTheFailureNeeds) {
  // Synthetic failure cause: "the schedule contains a crash window". The
  // minimal case must keep one crash episode (crash + its recover, which
  // travel together) and drop every other event and behavior.
  const std::uint64_t seed = find_seed(1, [](const FuzzCase& c) {
    return has_event(c, sim::FaultKind::kCrash) && c.schedule.events.size() > 2;
  });
  const ShrinkResult result = shrink(
      seed, [](const FuzzCase& c) { return has_event(c, sim::FaultKind::kCrash); });
  ASSERT_EQ(result.minimal.schedule.events.size(), 2U)
      << describe(result.minimal) << "\nrepro: " << repro_line(seed, result.deltas);
  EXPECT_EQ(result.minimal.schedule.events[0].kind, sim::FaultKind::kCrash);
  EXPECT_EQ(result.minimal.schedule.events[1].kind, sim::FaultKind::kRecover);
  EXPECT_TRUE(result.minimal.behaviors.empty());
  // The recorded deltas replay to the same minimal case (what fuzz_repro
  // does with the printed line).
  const FuzzCase replayed = apply_deltas(sample_case(seed), result.deltas);
  EXPECT_EQ(describe(replayed), describe(result.minimal));
}

TEST(FuzzShrinkTest, NonReproducingFailureShrinksToNothing) {
  const ShrinkResult result = shrink(9, [](const FuzzCase&) { return false; });
  EXPECT_TRUE(result.deltas.empty());
  EXPECT_EQ(result.attempts, 1U);
}

TEST(FuzzShrinkTest, EpisodesPairWindowEvents) {
  FuzzCase c;
  c.schedule.events.resize(7);
  c.schedule.events[0].kind = sim::FaultKind::kPartition;
  c.schedule.events[1].kind = sim::FaultKind::kHeal;
  c.schedule.events[2].kind = sim::FaultKind::kCrash;
  c.schedule.events[2].node = 2;
  c.schedule.events[3].kind = sim::FaultKind::kDelayChange;
  c.schedule.events[4].kind = sim::FaultKind::kRecover;
  c.schedule.events[4].node = 2;
  c.schedule.events[5].kind = sim::FaultKind::kLeave;
  c.schedule.events[5].node = 0;
  c.schedule.events[6].kind = sim::FaultKind::kRejoin;
  c.schedule.events[6].node = 0;
  const auto episodes = event_episodes(c);
  ASSERT_EQ(episodes.size(), 4U);
  EXPECT_EQ(episodes[0], (std::vector<std::size_t>{0, 1}));  // partition + heal
  EXPECT_EQ(episodes[1], (std::vector<std::size_t>{2, 4}));  // crash + its recover
  EXPECT_EQ(episodes[2], (std::vector<std::size_t>{3}));     // delay change alone
  EXPECT_EQ(episodes[3], (std::vector<std::size_t>{5, 6}));  // churn pair
}

TEST(FuzzShrinkTest, NodeShrinkDropsOutOfRangeReferencesAndRecapsBudget) {
  FuzzCase c;
  c.n = 7;
  c.behaviors.push_back(BehaviorAssignment{1, "mute"});
  c.behaviors.push_back(BehaviorAssignment{5, "equivocator"});  // out of range at n=4
  c.behaviors.push_back(BehaviorAssignment{2, "silent-leader"});  // over f=1 at n=4
  sim::FaultEvent cut;
  cut.kind = sim::FaultKind::kPartition;
  cut.groups = {{0, 1, 5}, {2, 6}};
  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = 6;
  c.schedule.events = {cut, crash};

  CaseDeltas deltas;
  deltas.n = 4;
  const FuzzCase shrunk = apply_deltas(c, deltas);
  EXPECT_EQ(shrunk.n, 4U);
  ASSERT_EQ(shrunk.behaviors.size(), 1U);  // f = 1 at n = 4
  EXPECT_EQ(shrunk.behaviors[0].node, 1U);
  ASSERT_EQ(shrunk.schedule.events.size(), 1U);  // the crash referenced node 6
  EXPECT_EQ(shrunk.schedule.events[0].kind, sim::FaultKind::kPartition);
  EXPECT_EQ(shrunk.schedule.events[0].groups,
            (std::vector<std::vector<ProcessId>>{{0, 1}, {2}}));
}

TEST(FuzzShrinkTest, NodeShrinkRecapsCrashVictimsAgainstTheFaultBudget) {
  // Crash/churn victims count against the same ever-faulty budget as
  // Byzantine assignments: at n=7 (f=2) one mute node plus a crash window
  // on another node fits; at n=4 (f=1) the crash episode must go (with
  // its recover), or the shrunken case would leave the
  // guaranteed-recovery envelope and fail for a reason the original
  // never exhibited.
  FuzzCase c;
  c.n = 7;
  c.behaviors.push_back(BehaviorAssignment{0, "mute"});
  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = 2;
  sim::FaultEvent recover;
  recover.kind = sim::FaultKind::kRecover;
  recover.node = 2;
  c.schedule.events = {crash, recover};

  CaseDeltas deltas;
  deltas.n = 4;
  const FuzzCase shrunk = apply_deltas(c, deltas);
  ASSERT_EQ(shrunk.behaviors.size(), 1U);
  EXPECT_TRUE(shrunk.schedule.events.empty())
      << "crash window on a second node exceeds f=1; it must drop with its recover";

  // Without the Byzantine assignment the crash victim is THE fault and
  // survives the shrink.
  FuzzCase honest = c;
  honest.behaviors.clear();
  const FuzzCase kept = apply_deltas(honest, deltas);
  EXPECT_EQ(kept.schedule.events.size(), 2U);
}

TEST(FuzzShrinkTest, ReproLineNamesEveryDelta) {
  CaseDeltas deltas;
  deltas.drop_events = {1, 3};
  deltas.drop_behaviors = {0};
  deltas.n = 4;
  deltas.drop_workload = true;
  EXPECT_EQ(repro_line(77, deltas),
            "fuzz_repro --seed 77 --drop-events 1,3 --drop-behaviors 0 --n 4 --no-workload");
  EXPECT_EQ(repro_line(5, CaseDeltas{}), "fuzz_repro --seed 5");
}

}  // namespace
}  // namespace lumiere::fuzz
