// The oracle library itself: satisfied on a healthy run, and each
// liveness oracle fires with a self-contained description when its
// window demonstrably lacks progress.
#include "fuzz/oracles.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"

namespace lumiere::fuzz {
namespace {

runtime::ScenarioBuilder healthy_options() {
  runtime::ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(11);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  return options;
}

TEST(OracleTest, HealthyRunSatisfiesEveryOracle) {
  runtime::ScenarioBuilder options = healthy_options();
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kClosedLoop;
  spec.in_flight = 2;
  spec.stop = TimePoint(Duration::seconds(5).ticks());
  options.workload(spec);
  runtime::Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));

  EXPECT_EQ(check_safety(cluster), std::nullopt);
  EXPECT_EQ(check_view_monotonicity(cluster), std::nullopt);
  EXPECT_EQ(check_decision_liveness(cluster, TimePoint::origin(), Duration::seconds(10), 5),
            std::nullopt);
  EXPECT_EQ(check_commit_liveness(cluster, TimePoint::origin(), Duration::seconds(10), 5),
            std::nullopt);
  EXPECT_EQ(check_exactly_once(cluster), std::nullopt);
}

TEST(OracleTest, LivenessOraclesFireOnAnEmptyWindow) {
  runtime::Cluster cluster(healthy_options());
  cluster.run_for(Duration::seconds(5));

  // A window the run never reached cannot contain progress: both forms
  // must fire and name the window and the observed count.
  const TimePoint late(Duration::seconds(60).ticks());
  const auto decisions = check_decision_liveness(cluster, late, Duration::seconds(1), 1);
  ASSERT_TRUE(decisions.has_value());
  EXPECT_NE(decisions->find("liveness"), std::string::npos);
  EXPECT_NE(decisions->find("0 decisions"), std::string::npos);

  const auto commits = check_commit_liveness(cluster, late, Duration::seconds(1), 1);
  ASSERT_TRUE(commits.has_value());
  EXPECT_NE(commits->find("0 blocks"), std::string::npos);
}

TEST(OracleTest, LivenessCountsOnlyTheWindow) {
  runtime::Cluster cluster(healthy_options());
  cluster.run_for(Duration::seconds(5));
  // Everything the run produced lies in [0, 5s): demanding it inside
  // (4s, 5s] succeeds, demanding the full total there fails.
  const std::size_t total = cluster.metrics().decisions().size();
  ASSERT_GT(total, 10U);
  EXPECT_EQ(check_decision_liveness(cluster, TimePoint(Duration::seconds(4).ticks()),
                                    Duration::seconds(1), 1),
            std::nullopt);
  EXPECT_TRUE(check_decision_liveness(cluster, TimePoint(Duration::seconds(4).ticks()),
                                      Duration::seconds(1), total)
                  .has_value());
}

TEST(OracleTest, SafetyHoldsUnderEquivocationAcrossChainedCores) {
  // The safety oracle is exercised end-to-end by the byzantine suites;
  // here: an equivocating leader plus a QC withholder on both chained
  // cores must leave honest ledgers prefix-consistent.
  for (const std::string core : {"chained-hotstuff", "hotstuff-2"}) {
    runtime::ScenarioBuilder options = healthy_options();
    options.core(core);
    options.behaviors(adversary::byzantine_set({0}, [](ProcessId) {
      return std::make_unique<adversary::EquivocatorBehavior>();
    }));
    runtime::Cluster cluster(options);
    cluster.run_for(Duration::seconds(20));
    const auto violation = check_safety(cluster);
    EXPECT_EQ(violation, std::nullopt) << core << ": " << *violation;
    EXPECT_EQ(check_view_monotonicity(cluster), std::nullopt);
  }
}

TEST(OracleTest, ExactlyOnceSeesThroughScriptedDisruption) {
  // A partition window plus a scheduled behavior change while a
  // closed-loop workload runs: every admitted request still commits at
  // most once on every honest ledger.
  runtime::ScenarioBuilder options = healthy_options();
  options.seed(23);
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kClosedLoop;
  spec.in_flight = 2;
  spec.stop = TimePoint(Duration::seconds(4).ticks());
  options.workload(spec);
  options.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(1).ticks()));
  options.heal(TimePoint(Duration::seconds(2).ticks()));
  options.behavior_change(3, "mute", TimePoint(Duration::millis(2500).ticks()));
  runtime::Cluster cluster(options);
  cluster.run_for(Duration::seconds(12));

  EXPECT_EQ(check_exactly_once(cluster), std::nullopt);
  EXPECT_EQ(check_safety(cluster), std::nullopt);
  const auto honest = cluster.honest_ids();
  EXPECT_EQ(honest.size(), 3U) << "the scheduled mute flip counts against the honest set";
  EXPECT_EQ(std::count(honest.begin(), honest.end(), 3), 0);
}

}  // namespace
}  // namespace lumiere::fuzz
