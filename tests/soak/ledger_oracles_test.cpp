// Data-form oracles (fuzz/ledger_oracles.h): the checks tools/soak runs
// over ledgers downloaded from separate replica processes. Honest dumps
// are contiguous windows of one committed chain (full prefixes, or
// checkpoint-adopted suffixes), so the oracles compare view-overlap
// windows — exercised here on synthetic dumps with known defects.
#include "fuzz/ledger_oracles.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "ser/serializer.h"
#include "workload/request.h"

namespace lumiere::fuzz {
namespace {

crypto::Digest block_hash(View v) {
  const auto bytes = std::to_string(v);
  return crypto::Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

/// A window [from, to] of the canonical synthetic chain.
NodeLedgerData window(ProcessId node, View from, View to) {
  NodeLedgerData data;
  data.node = node;
  for (View v = from; v <= to; ++v) {
    data.records.push_back({v, block_hash(v), {}});
  }
  return data;
}

/// One mempool batch holding a single workload request.
std::vector<std::uint8_t> request_batch(std::uint32_t client, std::uint64_t seq) {
  const auto command = workload::Request::encode(client, seq, {});
  ser::Writer w;
  w.bytes(std::span<const std::uint8_t>(command.data(), command.size()));
  return std::move(w).take();
}

TEST(LedgerOraclesTest, SafetyPassesOnPrefixAndSuffixWindows) {
  // Node 0 holds the full prefix; node 1 restarted and holds an adopted
  // suffix. Their overlap agrees — the expected healthy soak shape.
  const std::vector<NodeLedgerData> nodes = {window(0, 0, 9), window(1, 4, 12)};
  EXPECT_EQ(check_safety_data(nodes), std::nullopt);
}

TEST(LedgerOraclesTest, SafetyIsVacuousOnDisjointWindows) {
  const std::vector<NodeLedgerData> nodes = {window(0, 0, 3), window(1, 6, 9)};
  EXPECT_EQ(check_safety_data(nodes), std::nullopt);
}

TEST(LedgerOraclesTest, SafetyCatchesAFork) {
  auto a = window(0, 0, 9);
  auto b = window(1, 0, 9);
  b.records[5].hash = block_hash(999);  // same view, different block
  const auto violation = check_safety_data({a, b});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("safety"), std::string::npos);
}

TEST(LedgerOraclesTest, SafetyCatchesAMissingEntryInTheOverlap) {
  auto a = window(0, 0, 6);
  auto b = window(1, 0, 6);
  b.records.erase(b.records.begin() + 3);  // interior gap: not a window
  const auto violation = check_safety_data({a, b});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("different block counts"), std::string::npos);
}

TEST(LedgerOraclesTest, SafetyIgnoresByzantineDumps) {
  auto a = window(0, 0, 9);
  auto b = window(1, 0, 9);
  b.records[5].hash = block_hash(999);
  b.ever_byzantine = true;  // its dump is untrusted, not evidence
  EXPECT_EQ(check_safety_data({a, b}), std::nullopt);
}

TEST(LedgerOraclesTest, ViewMonotonicityCatchesRegression) {
  auto a = window(0, 0, 5);
  a.records.push_back({3, block_hash(3), {}});  // commits view 3 after 5
  const auto violation = check_view_monotonicity_data({a});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("monotonicity"), std::string::npos);
  a.ever_byzantine = true;
  EXPECT_EQ(check_view_monotonicity_data({a}), std::nullopt);
}

TEST(LedgerOraclesTest, ExactlyOnceCatchesDuplicateWithinOneDump) {
  NodeLedgerData node = window(0, 0, 2);
  node.records[0].payload = request_batch(workload::client_id(2, 0), 7);
  node.records[2].payload = request_batch(workload::client_id(2, 0), 7);  // same (client, seq)
  const auto violation = check_exactly_once_data({node});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("exactly-once"), std::string::npos);
}

TEST(LedgerOraclesTest, ExactlyOnceForgivesRestartedNodesClients) {
  // Node 2 restarted: its clients restart their sequence numbers, so
  // their pre-crash tags legitimately commit a second time.
  NodeLedgerData observer = window(0, 0, 2);
  observer.records[0].payload = request_batch(workload::client_id(2, 0), 7);
  observer.records[2].payload = request_batch(workload::client_id(2, 0), 7);
  NodeLedgerData restarted = window(2, 0, 0);
  restarted.restarted = true;
  EXPECT_EQ(check_exactly_once_data({observer, restarted}), std::nullopt);
}

TEST(LedgerOraclesTest, ExactlyOnceIgnoresUntaggedPayloads) {
  NodeLedgerData node = window(0, 0, 1);
  node.records[0].payload = {0xDE, 0xAD};  // not a workload batch
  node.records[1].payload = {0xDE, 0xAD};
  EXPECT_EQ(check_exactly_once_data({node}), std::nullopt);
}

TEST(LedgerOraclesTest, CommitProgressRequiresGrowthBeyondWatermark) {
  const std::vector<NodeLedgerData> nodes = {window(1, 0, 10)};
  EXPECT_EQ(check_commit_progress_data(nodes, 1, 5), std::nullopt);
  EXPECT_TRUE(check_commit_progress_data(nodes, 1, 10).has_value());
  EXPECT_TRUE(check_commit_progress_data(nodes, 1, 15).has_value());
  EXPECT_TRUE(check_commit_progress_data(nodes, 3, 0).has_value()) << "no dump for node 3";
}

}  // namespace
}  // namespace lumiere::fuzz
