// Cross-transport replay parity: one sampled fuzz case replays on real
// TCP sockets to the same oracle verdict as the deterministic simulator
// (the contract behind `fuzz_repro --transport=tcp`). Digests are NOT
// comparable across transports (empty trace, wall-clock stamps) — the
// verdict is.
#include <gtest/gtest.h>

#include "fuzz/engine.h"

namespace lumiere::fuzz {
namespace {

TEST(FuzzTcpParityTest, SimPassingSeedPassesOverTcp) {
  // Seed 42: n=4, simple-view core, a crash + recover episode. Small
  // enough to replay in wall-clock time, rich enough to cross the fault
  // scheduling path on both transports.
  const FuzzCase c = sample_case(42);
  const RunResult sim = run_case(c);
  EXPECT_TRUE(sim.ok()) << sim.violations.front();
  const RunResult tcp = run_case_tcp(c, /*tcp_base_port=*/28900);
  EXPECT_TRUE(tcp.ok()) << tcp.violations.front();
  EXPECT_EQ(sim.ok(), tcp.ok()) << "transports disagree on the verdict";
}

}  // namespace
}  // namespace lumiere::fuzz
