// ClusterSpec and ledger-dump wire formats (runtime/spec_io.h): the
// contracts every soak replica process and the orchestrator rely on to
// agree byte-for-byte without shared memory.
#include "runtime/spec_io.h"

#include <gtest/gtest.h>

#include <string>

#include "consensus/block.h"
#include "consensus/ledger.h"

namespace lumiere::runtime {
namespace {

ClusterSpec non_default_spec() {
  ClusterSpec spec;
  spec.n = 7;
  spec.delta_us = 25'000;
  spec.x = 5;
  spec.pacemaker = "round-robin";
  spec.core = "chained-hotstuff";
  spec.seed = 0xBEEF;
  spec.auth_scheme = "hmac";
  spec.tcp_base_port = 28300;
  spec.status_base_port = 28310;
  spec.admin_token = "soak-token";
  spec.pipeline = true;
  spec.pipeline_workers = 2;
  spec.pipeline_queue = 64;
  spec.dissem = true;
  spec.arrival = "poisson";
  spec.clients_per_node = 3;
  spec.rate_per_client = 50.5;
  spec.in_flight = 8;
  spec.request_bytes = 128;
  spec.behaviors[2] = "mute";
  spec.behaviors[5] = "equivocator";
  return spec;
}

TEST(SpecIoTest, ClusterSpecRoundTrips) {
  const ClusterSpec spec = non_default_spec();
  std::string error;
  const auto parsed = parse_cluster_spec(serialize(spec), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->n, spec.n);
  EXPECT_EQ(parsed->delta_us, spec.delta_us);
  EXPECT_EQ(parsed->x, spec.x);
  EXPECT_EQ(parsed->pacemaker, spec.pacemaker);
  EXPECT_EQ(parsed->core, spec.core);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->tcp_base_port, spec.tcp_base_port);
  EXPECT_EQ(parsed->status_base_port, spec.status_base_port);
  EXPECT_EQ(parsed->admin_token, spec.admin_token);
  EXPECT_EQ(parsed->pipeline, spec.pipeline);
  EXPECT_EQ(parsed->pipeline_workers, spec.pipeline_workers);
  EXPECT_EQ(parsed->pipeline_queue, spec.pipeline_queue);
  EXPECT_EQ(parsed->dissem, spec.dissem);
  EXPECT_EQ(parsed->arrival, spec.arrival);
  EXPECT_EQ(parsed->clients_per_node, spec.clients_per_node);
  EXPECT_DOUBLE_EQ(parsed->rate_per_client, spec.rate_per_client);
  EXPECT_EQ(parsed->in_flight, spec.in_flight);
  EXPECT_EQ(parsed->request_bytes, spec.request_bytes);
  EXPECT_EQ(parsed->behaviors, spec.behaviors);
  // Serialization is canonical: round-tripping is a fixed point.
  EXPECT_EQ(serialize(*parsed), serialize(spec));
}

TEST(SpecIoTest, ParseRejectsWrongHeader) {
  std::string error;
  EXPECT_FALSE(parse_cluster_spec("lumiere-scenario v999\nend\n", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SpecIoTest, ParseRejectsTruncatedSpec) {
  std::string text = serialize(non_default_spec());
  text.erase(text.rfind("end"));  // drop the terminator
  std::string error;
  EXPECT_FALSE(parse_cluster_spec(text, error).has_value());
}

TEST(SpecIoTest, ToBuilderResolvesDeterministically) {
  ClusterSpec spec;
  spec.n = 4;
  spec.core = "chained-hotstuff";
  spec.tcp_base_port = 28320;
  spec.status_base_port = 0;
  const Scenario a = to_builder(spec).scenario();
  const Scenario b = to_builder(spec).scenario();
  EXPECT_EQ(a.params.n, 4U);
  EXPECT_EQ(a.tcp_base_port, spec.tcp_base_port);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.nodes.size(), 4U);
  EXPECT_TRUE(a.nodes[0].workload.has_value()) << "soak specs always carry a workload";
}

// ----------------------------------------------------------------- ledger

TEST(SpecIoTest, LedgerDumpRoundTrips) {
  consensus::Ledger ledger;
  const consensus::Block genesis = consensus::Block::genesis();
  const auto qc = consensus::QuorumCert::genesis(genesis.hash());
  const consensus::Block b1(genesis.hash(), 3, {0xAA, 0xBB}, qc);
  const consensus::Block b2(b1.hash(), 4, {}, qc);  // empty payload survives
  ledger.commit(b1, TimePoint(10));
  ledger.commit(b2, TimePoint(20));

  std::string error;
  const auto records = parse_ledger(render_ledger(ledger), error);
  ASSERT_TRUE(records.has_value()) << error;
  ASSERT_EQ(records->size(), 2U);
  EXPECT_EQ((*records)[0].view, 3);
  EXPECT_EQ((*records)[0].hash.hex(), b1.hash().hex());
  EXPECT_EQ((*records)[0].payload, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ((*records)[1].view, 4);
  EXPECT_TRUE((*records)[1].payload.empty());
}

TEST(SpecIoTest, LedgerParseRejectsTruncatedDump) {
  consensus::Ledger ledger;
  const consensus::Block genesis = consensus::Block::genesis();
  const auto qc = consensus::QuorumCert::genesis(genesis.hash());
  ledger.commit(consensus::Block(genesis.hash(), 1, {0x01}, qc), TimePoint(1));
  std::string text = render_ledger(ledger);
  text.erase(text.rfind("END"));
  std::string error;
  EXPECT_FALSE(parse_ledger(text, error).has_value());
  EXPECT_FALSE(error.empty());
}

// Crash recovery: an adopted base replaces genesis as the first-commit
// anchor, turning the ledger into a committed suffix window.
TEST(SpecIoTest, AdoptedLedgerAnchorsAtCheckpoint) {
  const consensus::Block genesis = consensus::Block::genesis();
  const auto qc = consensus::QuorumCert::genesis(genesis.hash());
  const consensus::Block ancestor(genesis.hash(), 40, {0x01}, qc);
  const consensus::Block checkpoint(ancestor.hash(), 41, {0x02}, qc);

  consensus::Ledger ledger;
  EXPECT_FALSE(ledger.checkpoint_adopted());
  ledger.adopt_base(checkpoint.parent());
  EXPECT_TRUE(ledger.checkpoint_adopted());
  ledger.commit(checkpoint, TimePoint(100));  // extends the adopted base, not genesis
  ASSERT_EQ(ledger.size(), 1U);
  EXPECT_EQ(ledger.entries()[0].view, 41);

  std::string error;
  const auto records = parse_ledger(render_ledger(ledger), error);
  ASSERT_TRUE(records.has_value()) << error;
  EXPECT_EQ(records->front().view, 41);
}

}  // namespace
}  // namespace lumiere::runtime
