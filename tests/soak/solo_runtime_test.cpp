// SoloNodeRuntime end-to-end: an in-process cluster of four standalone
// replica stacks over real TCP — the same stack tools/lumiere_node hosts
// one-per-process — exercising the soak cluster's core promises without
// fork/exec:
//
//   * the cluster commits over real sockets,
//   * a torn-down replica rebuilds from the shared spec, reconnects and
//     resumes committing via checkpoint adoption (crash recovery),
//   * the admin control plane applies live on the driver thread.
#include "runtime/solo_node.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/ledger_oracles.h"

namespace lumiere::runtime {
namespace {

// Port block disjoint from the transport (23xxx/25xxx) and obs (27xxx)
// suites; the soak suite is RUN_SERIAL so nothing shares it.
constexpr std::uint16_t kTcpBase = 28000;
constexpr std::uint16_t kStatusBase = 28040;
constexpr const char* kToken = "test-token";

ClusterSpec soak_spec() {
  ClusterSpec spec;
  spec.n = 4;
  spec.core = "chained-hotstuff";
  spec.pacemaker = "lumiere";
  spec.seed = 909;
  spec.tcp_base_port = kTcpBase;
  spec.status_base_port = kStatusBase;
  spec.admin_token = kToken;
  return spec;
}

/// One replica + the thread driving it (the role a whole lumiere_node
/// process plays in the real soak cluster).
struct Host {
  std::unique_ptr<SoloNodeRuntime> runtime;
  std::thread thread;
  std::atomic<bool> stop{false};

  void start() {
    stop.store(false);
    thread = std::thread([this] {
      while (!stop.load(std::memory_order_relaxed)) {
        runtime->run_for(std::chrono::milliseconds(50));
      }
    });
  }
  void halt() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
};

/// Minimal blocking line client for the status/admin endpoint.
class AdminClient {
 public:
  explicit AdminClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("connect() failed");
    }
  }
  ~AdminClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string roundtrip(const std::string& line) {
    const std::string framed = line + "\n";
    if (::send(fd_, framed.data(), framed.size(), 0) != static_cast<ssize_t>(framed.size())) {
      return "(send failed)";
    }
    std::string reply;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
    return reply;
  }

 private:
  int fd_ = -1;
};

std::uint64_t best_commit(const std::vector<std::unique_ptr<Host>>& hosts, ProcessId skip) {
  std::uint64_t best = 0;
  for (const auto& host : hosts) {
    if (host->runtime == nullptr || host->runtime->id() == skip) continue;
    best = std::max(best, host->runtime->status().last_commit_height);
  }
  return best;
}

fuzz::NodeLedgerData ledger_data(const SoloNodeRuntime& runtime, bool restarted) {
  fuzz::NodeLedgerData data;
  data.node = runtime.id();
  data.restarted = restarted;
  for (const auto& entry : runtime.node().ledger().entries()) {
    data.records.push_back({entry.view, entry.hash, entry.payload});
  }
  return data;
}

TEST(SoloRuntimeTest, ClusterCommitsRestartRecoversAndAdminApplies) {
  const ClusterSpec spec = soak_spec();
  std::vector<std::unique_ptr<Host>> hosts;
  for (ProcessId id = 0; id < spec.n; ++id) {
    hosts.push_back(std::make_unique<Host>());
    hosts.back()->runtime = std::make_unique<SoloNodeRuntime>(spec, id);
  }
  for (auto& host : hosts) host->start();

  // Phase 1 — the four stacks commit over real sockets.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool all_committing = false;
  while (!all_committing && std::chrono::steady_clock::now() < deadline) {
    all_committing = true;
    for (const auto& host : hosts) {
      if (host->runtime->status().last_commit_height == 0) all_committing = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(all_committing) << "cluster never started committing over TCP";

  // Phase 2 — replica 1 dies (stack destroyed: all state lost, ports
  // freed), rebuilds from the same spec, reconnects and must commit past
  // the cluster's height at its restart.
  hosts[1]->halt();
  hosts[1]->runtime.reset();
  const std::uint64_t watermark = best_commit(hosts, /*skip=*/1);
  ASSERT_GT(watermark, 0U);
  hosts[1]->runtime = std::make_unique<SoloNodeRuntime>(spec, 1);
  hosts[1]->start();

  bool recovered = false;
  const auto recover_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!recovered && std::chrono::steady_clock::now() < recover_deadline) {
    recovered = hosts[1]->runtime->status().last_commit_height > watermark;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(recovered) << "restarted replica never committed beyond watermark " << watermark;

  // Its driver stopped, the restarted ledger is inspectable: it adopted a
  // certified checkpoint (it cannot have replayed history back to
  // genesis) and agrees with a survivor over their view overlap.
  hosts[1]->halt();
  EXPECT_TRUE(hosts[1]->runtime->node().ledger().checkpoint_adopted());
  hosts[0]->halt();
  const auto violation = fuzz::check_safety_data(
      {ledger_data(*hosts[0]->runtime, false), ledger_data(*hosts[1]->runtime, true)});
  EXPECT_EQ(violation, std::nullopt) << *violation;
  const auto monotone = fuzz::check_view_monotonicity_data({ledger_data(*hosts[1]->runtime, true)});
  EXPECT_EQ(monotone, std::nullopt) << *monotone;

  // Phase 3 — the admin control plane, against a live driver (node 2).
  {
    AdminClient client(static_cast<std::uint16_t>(kStatusBase + 2));
    EXPECT_EQ(client.roundtrip("ISOLATE"), "ERR auth required");
    EXPECT_EQ(client.roundtrip("AUTH wrong"), "ERR bad token");
    EXPECT_EQ(client.roundtrip(std::string("AUTH ") + kToken), "OK");
    EXPECT_EQ(client.roundtrip("DROP 0 0.5"), "OK");
    EXPECT_EQ(client.roundtrip("DROP 9 0.5"), "ERR peer out of range");
    EXPECT_EQ(client.roundtrip("BEHAVIOR no-such-behavior"),
              "ERR unknown behavior 'no-such-behavior'");
    EXPECT_EQ(client.roundtrip("CRASH"), "ERR crash disabled")
        << "in-process runtimes must never _exit the harness";
    EXPECT_EQ(client.roundtrip("BEHAVIOR equivocator"), "OK");
    EXPECT_EQ(client.roundtrip("HEAL"), "OK");
  }
  EXPECT_TRUE(hosts[2]->runtime->status().ever_byzantine)
      << "live behavior flip must mark the node for the oracles";

  for (auto& host : hosts) host->halt();
}

}  // namespace
}  // namespace lumiere::runtime
