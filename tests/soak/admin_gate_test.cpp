// The runtime adversary control plane's parsing and thread hand-off
// (obs/admin.h): session threads parse and submit, the driver thread
// drains and applies.
#include "obs/admin.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace lumiere::obs {
namespace {

std::optional<AdminCommand> parse(const std::string& line) {
  std::string error;
  return parse_admin(line, error);
}

TEST(AdminParseTest, ParsesEveryVerb) {
  auto behavior = parse("BEHAVIOR equivocator");
  ASSERT_TRUE(behavior.has_value());
  EXPECT_EQ(behavior->kind, AdminKind::kBehavior);
  EXPECT_EQ(behavior->behavior, "equivocator");

  auto drop = parse("DROP 2 0.25");
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->kind, AdminKind::kDrop);
  EXPECT_EQ(drop->peer, 2U);
  EXPECT_DOUBLE_EQ(drop->probability, 0.25);

  auto delay = parse("DELAY 1 5");
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(delay->kind, AdminKind::kDelay);
  EXPECT_EQ(delay->peer, 1U);
  EXPECT_EQ(delay->delay.ticks(), Duration::millis(5).ticks());

  EXPECT_EQ(parse("ISOLATE")->kind, AdminKind::kIsolate);
  EXPECT_EQ(parse("HEAL")->kind, AdminKind::kHeal);
  EXPECT_EQ(parse("CRASH")->kind, AdminKind::kCrash);
  EXPECT_EQ(parse("LEDGER")->kind, AdminKind::kLedger);
}

TEST(AdminParseTest, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_admin("BEHAVIOR", error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_admin("DROP 2", error).has_value());
  EXPECT_FALSE(parse_admin("DROP x 0.5", error).has_value());
  EXPECT_FALSE(parse_admin("DROP 2 1.5", error).has_value()) << "probability out of [0,1]";
  EXPECT_FALSE(parse_admin("DELAY 2 -5", error).has_value());
  EXPECT_FALSE(parse_admin("HEAL now", error).has_value()) << "trailing arguments";
  EXPECT_FALSE(parse_admin("FROBNICATE", error).has_value());
}

TEST(AdminGateTest, SubmitTimesOutWhenNobodyDrains) {
  AdminGate gate;
  AdminCommand command;
  command.kind = AdminKind::kHeal;
  EXPECT_EQ(gate.submit(command, Duration::millis(30)), std::nullopt);
  EXPECT_EQ(gate.applied(), 0U);
  // The timed-out entry was unlinked: a later drain sees an empty queue
  // and must not touch the dead stack frame.
  gate.drain([](const AdminCommand&) { return std::string("OK"); });
  EXPECT_EQ(gate.applied(), 0U);
}

TEST(AdminGateTest, DrainAppliesAndWakesSubmitters) {
  AdminGate gate;
  std::optional<std::string> reply;
  std::thread session([&] {
    AdminCommand command;
    command.kind = AdminKind::kIsolate;
    reply = gate.submit(command, Duration::millis(5000));
  });
  // Driver side: drain until the command comes through.
  std::vector<AdminKind> applied;
  while (gate.applied() == 0) {
    gate.drain([&](const AdminCommand& command) {
      applied.push_back(command.kind);
      return std::string("OK");
    });
    std::this_thread::yield();
  }
  session.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK");
  ASSERT_EQ(applied.size(), 1U);
  EXPECT_EQ(applied[0], AdminKind::kIsolate);
  EXPECT_EQ(gate.applied(), 1U);
}

}  // namespace
}  // namespace lumiere::obs
