// Lemma 5.15 / Theorem 1.1 (4): once an epoch has a timely start, every
// honest-leader view produces a QC, no epoch-view messages are sent, and
// the next epoch starts timely too — heavy synchronization stops forever.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

const core::LumierePacemaker& lumiere_of(const Cluster& cluster, ProcessId id) {
  return static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
}

TEST(SteadyStateTest, HeavySyncStopsAfterWarmup) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(51);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(options);

  // Warm up well past the bootstrap.
  cluster.run_for(Duration::seconds(20));
  const std::uint64_t heavy_after_warmup =
      cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  ASSERT_GE(lumiere_of(cluster, 0).current_epoch(), 1);

  // From here on, zero epoch-view messages — across several more epochs.
  cluster.run_for(Duration::seconds(60));
  ASSERT_GE(lumiere_of(cluster, 0).current_epoch(), 3);
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kEpochViewMsg), heavy_after_warmup)
      << "heavy synchronization re-appeared in the steady state";
}

TEST(SteadyStateTest, EveryHonestLeaderViewProducesQc) {
  // All-honest steady state: count decisions per epoch; with n honest
  // leaders x 10 views each, every view of a warmed-up epoch yields a QC.
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(52);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(90));

  const auto& math = lumiere_of(cluster, 0).math();
  const Epoch current = lumiere_of(cluster, 0).current_epoch();
  ASSERT_GE(current, 2);
  // Examine one fully completed post-warmup epoch (epoch 1).
  std::set<View> decided_views;
  for (const auto& d : cluster.metrics().decisions()) {
    if (math.epoch_of(d.view) == 1) decided_views.insert(d.view);
  }
  EXPECT_EQ(static_cast<std::int64_t>(decided_views.size()), math.views_per_epoch())
      << "every view of a timely epoch must produce a QC (Lemma 5.15 (1))";
}

TEST(SteadyStateTest, EventualCommLinearInFaults) {
  // Theorem 1.1 (4): eventual worst-case communication O(n * f_a + n).
  // Compare steady-state per-decision message cost at f_a = 0 vs
  // f_a = f: both must be far below the n^2 of an epoch sync, and the
  // f_a = 0 cost must not include any epoch-view traffic.
  const std::uint32_t n = 10;  // f = 3
  auto run = [&](std::uint32_t f_a) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(n, Duration::millis(10)));
    options.pacemaker("lumiere");
    options.seed(53);
    options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
    if (f_a > 0) {
      std::vector<ProcessId> byz;
      for (ProcessId id = 0; id < f_a; ++id) byz.push_back(id);
      options.behaviors(adversary::byzantine_set(byz, [](ProcessId) {
        return std::make_unique<adversary::SilentLeaderBehavior>();
      }));
    }
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(120));
    return cluster.metrics().max_msg_gap(TimePoint::origin(), /*warmup=*/60);
  };

  const auto fault_free = run(0);
  const auto with_faults = run(3);
  ASSERT_TRUE(fault_free.has_value());
  ASSERT_TRUE(with_faults.has_value());
  // The quadratic epoch sync would cost >= n*(n-1) = 90 messages by
  // itself; steady state must be well under that even with faults.
  EXPECT_LT(*fault_free, 60U) << "fault-free steady state should be ~4n per decision";
  EXPECT_LT(*with_faults, 200U) << "faulty steady state should be O(n * f_a)";
  EXPECT_GE(*with_faults, *fault_free) << "faults cannot make it cheaper";
}

}  // namespace
}  // namespace lumiere::runtime
