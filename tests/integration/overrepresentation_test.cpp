// The Section 3.5 adversary: Byzantine leaders keep epochs "looking
// successful" (producing QCs) while starving part of the cluster of the
// clock bumps those QCs should deliver — trying to hold the honest gap
// above Gamma forever so honest leaders keep failing.
//
// Lumiere's defenses under test:
//  * the success criterion needs 2f+1 distinct leaders with all 10 QCs,
//    so f Byzantine leaders cannot sustain it alone;
//  * honest QC production is deadline-disciplined (Gamma/2 - 2*Delta), so
//    every honest QC after GST shrinks hg_{f+1} (Lemma 5.12);
//  * epochs are long enough (10n views) that one successful epoch drags
//    hg_{f+1} below Gamma before the boundary.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "adversary/delay_adversary.h"
#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

/// f selective-QC Byzantine processes (they favor the low-id half of the
/// cluster with QC/VC announcements and starve the rest).
ScenarioBuilder attack_options(std::string kind, std::uint32_t n, std::uint64_t seed) {
  const std::uint32_t f = (n - 1) / 3;
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker(kind);
  options.seed(seed);
  // Fast network: bumps race ahead of clocks, maximizing the leverage of
  // selectively withholding them.
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(200)));
  std::vector<ProcessId> byz;
  for (ProcessId id = n - f; id < n; ++id) byz.push_back(id);  // high ids
  const std::uint32_t favored = (n + 1) / 2;
  options.behaviors(adversary::byzantine_set(byz, [favored](ProcessId) {
    return std::make_unique<adversary::SelectiveQcBehavior>(favored);
  }));
  return options;
}

TEST(OverrepresentationTest, LumiereStaysLiveUnderSelectiveQcAttack) {
  ScenarioBuilder options = attack_options("lumiere", 7, 610);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(120));
  ASSERT_GE(cluster.metrics().decisions().size(), 200U) << "attack starved the cluster";
  // Eventual latency must stay O(f_a * Gamma), never epoch-scale
  // (10n * Gamma = 7s here): the attack must not force heavy stalls
  // forever. 10 Gamma absorbs the f_a tenures plus boundary effects.
  const ProtocolParams& params = cluster.scenario().params;
  const Duration gamma = params.delta_cap * 2 * (params.x + 2);
  const auto worst = cluster.metrics().max_decision_gap(TimePoint::origin(), 100);
  ASSERT_TRUE(worst.has_value());
  EXPECT_LE(*worst, gamma * 10)
      << "stalls grew beyond the O(f_a * Gamma) eventual bound";
}

TEST(OverrepresentationTest, HonestLeadersKeepProducingInSteadyState) {
  // Whenever the steady state engages despite the attack, honest-led
  // initial views must produce QCs — i.e. the success criterion really
  // implies synchronization (hg_{f+1} <= Gamma), Byzantine QCs cannot
  // fake it.
  ScenarioBuilder options = attack_options("lumiere", 7, 611);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));  // warmup
  const auto mask = cluster.byzantine_mask();
  std::set<View> decided;
  const std::size_t skip = cluster.metrics().decisions().size();
  cluster.run_for(Duration::seconds(60));
  const auto& decisions = cluster.metrics().decisions();
  for (std::size_t i = skip; i < decisions.size(); ++i) decided.insert(decisions[i].view);
  ASSERT_FALSE(decided.empty());

  // Over the post-warmup window, count honest-led initial views in the
  // fully-covered view range that failed to decide.
  const View lo = *decided.begin() + 1;
  const View hi = *decided.rbegin() - 1;
  ASSERT_GT(hi, lo);
  const auto& pm =
      static_cast<const core::LumierePacemaker&>(cluster.node(0).pacemaker());
  std::size_t honest_initial = 0;
  std::size_t honest_failed = 0;
  for (View v = lo; v <= hi; v += 2) {  // initial views are even
    const ProcessId leader = pm.leader_of(v);
    if (mask[leader]) continue;
    ++honest_initial;
    if (!decided.contains(v) && !decided.contains(v + 1)) ++honest_failed;
  }
  ASSERT_GE(honest_initial, 50U);
  EXPECT_EQ(honest_failed, 0U)
      << honest_failed << "/" << honest_initial
      << " honest-led view pairs failed in the steady state";
}

TEST(OverrepresentationTest, GapReturnsBelowGammaDespiteAttack) {
  // The (f+1)-st honest gap may spike while Byzantine leaders starve
  // half the cluster of bumps, but Lemma 5.12's shrinking plus the epoch
  // mechanism must pull it back below Gamma + 2*Delta recurrently.
  ScenarioBuilder options = attack_options("lumiere", 7, 612);
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  const ProtocolParams& params = cluster.scenario().params;
  const Duration gamma = params.delta_cap * 2 * (params.x + 2);
  const Duration bound = gamma + params.delta_cap * 2;
  const auto tracker = cluster.honest_gap_tracker();
  int below = 0;
  int samples = 0;
  for (; samples < 200; ++samples) {
    cluster.run_for(Duration::millis(100));
    if (tracker.gap(params.f + 1) <= bound) ++below;
  }
  // "Recurrently": a solid majority of samples must find the gap small —
  // the attack cannot hold it above Gamma.
  EXPECT_GE(below * 100 / samples, 80) << "gap stayed wide in " << samples - below
                                       << "/" << samples << " samples";
}

TEST(OverrepresentationTest, ByzantineQcsAloneCannotSatisfySuccessCriterion) {
  // Unit-level pin of the defense: QCs from f Byzantine leaders, however
  // many, never flip success(e) — the criterion needs 2f+1 leaders.
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(10));
  core::EpochMath math(7, Duration::millis(88));
  std::vector<Epoch> flipped;
  // Leader schedule: view v -> v % 7; ids 0,1 are Byzantine.
  core::SuccessTracker tracker(
      params, &math, [](View v) { return static_cast<ProcessId>(v % 7); },
      [&](Epoch e) { flipped.push_back(e); });
  // Feed every QC a Byzantine pair of leaders could ever produce in epoch
  // 0 (all views led by ids 0 and 1), plus a sprinkling from 3 honest
  // leaders (not enough for 2f+1 = 5 total).
  for (View v = 0; v < math.views_per_epoch(); ++v) {
    const auto leader = static_cast<ProcessId>(v % 7);
    if (leader <= 1 || leader == 3 || leader == 4 || leader == 5) tracker.record_qc(v);
  }
  EXPECT_EQ(tracker.leaders_done(0), 5U);
  // 5 leaders = 2f+1 exactly: success flips. Now redo with only 4.
  EXPECT_TRUE(tracker.success(0));
  ASSERT_EQ(flipped.size(), 1U);
  EXPECT_EQ(flipped.front(), 0);
  std::vector<Epoch> flipped2;
  core::SuccessTracker tracker2(
      params, &math, [](View v) { return static_cast<ProcessId>(v % 7); },
      [&](Epoch e) { flipped2.push_back(e); });
  for (View v = 0; v < math.views_per_epoch(); ++v) {
    const auto leader = static_cast<ProcessId>(v % 7);
    if (leader <= 1 || leader == 3 || leader == 4) tracker2.record_qc(v);
  }
  EXPECT_EQ(tracker2.leaders_done(0), 4U);
  EXPECT_TRUE(flipped2.empty()) << "success flipped with only 4 of 5 required leaders";
}

TEST(OverrepresentationTest, PartialQcRunsDoNotCountTowardSuccess) {
  // A leader with 9 of its 10 views certified contributes nothing: the
  // criterion counts *leaders with all views certified*, which is what
  // stops a Byzantine leader from being over-represented by bursts.
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  core::EpochMath math(4, Duration::millis(88));
  bool flipped = false;
  core::SuccessTracker tracker(
      params, &math, [](View v) { return static_cast<ProcessId>(v % 4); },
      [&](Epoch) { flipped = true; });
  // Every leader gets 9 of its 10 epoch-0 views certified.
  std::map<ProcessId, int> granted;
  for (View v = 0; v < math.views_per_epoch(); ++v) {
    const auto leader = static_cast<ProcessId>(v % 4);
    if (granted[leader] < 9) {
      tracker.record_qc(v);
      ++granted[leader];
    }
  }
  EXPECT_FALSE(flipped);
  EXPECT_EQ(tracker.leaders_done(0), 0U);
}

TEST(OverrepresentationTest, AttackWidensGapTransientlyThenHonestQcsHeal) {
  // The mechanism itself, observed at fine granularity: withholding QC
  // announcements pushes favored clocks ahead of starved ones (a real
  // (2f+1)-gap opens), and the next honest leader's full QC broadcast
  // closes it. Without the attack, a symmetric network keeps the gap at
  // (near) zero throughout.
  // Benign responsive runs show *instantaneous* Gamma-sized gaps too (the
  // sub-delta window while a QC bump is in flight) — Lemma 5.9 bounds the
  // gap by Gamma, it does not make it zero. What distinguishes the attack
  // is persistence: a starved processor stays behind for ~Gamma/2 of real
  // time (it has to walk to the bump target at clock speed), so we
  // measure the longest *contiguous* stretch of 1ms samples with
  // gap(2f+1) > Gamma/2.
  auto longest_wide_run = [](bool attack, std::uint64_t seed) {
    ScenarioBuilder options = attack_options("lumiere", 7, seed);
    if (!attack) options.behaviors(adversary::honest_cluster());
    Cluster cluster(options);
    const ProtocolParams& params = cluster.scenario().params;
    const Duration gamma = params.delta_cap * 2 * (params.x + 2);
    cluster.run_for(Duration::seconds(10));
    const auto tracker = cluster.honest_gap_tracker();
    int run = 0;
    int longest = 0;
    for (int i = 0; i < 2000; ++i) {
      cluster.run_for(Duration::millis(1));
      run = tracker.gap(5) > gamma / 2 ? run + 1 : 0;  // 2f+1 = 5
      longest = std::max(longest, run);
    }
    return longest;
  };
  const int attacked = longest_wide_run(true, 613);
  const int benign = longest_wide_run(false, 613);
  EXPECT_GE(attacked, 10) << "attack never held the gap open";
  EXPECT_LE(benign, 3) << "benign bump transients should close within delta";
}

}  // namespace
}  // namespace lumiere::runtime
