// Robustness fuzzing: protocols and parsers must survive garbage and
// adversarial noise without crashing, violating monotonicity, or losing
// liveness. Deterministic "fuzz" — seeded random generation, so failures
// reproduce.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

#include "consensus/messages.h"
#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"
#include "testutil/pacemaker_harness.h"

namespace lumiere {
namespace {

/// Random byte strings into every deserializer: must never crash and must
/// fail cleanly (nullopt / nullptr) or produce a structurally valid value.
TEST(FuzzTest, DeserializersSurviveGarbage) {
  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  Rng rng(0xFEEDFACE);
  for (int round = 0; round < 5000; ++round) {
    const std::size_t len = rng.next_below(200);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    (void)codec.decode(bytes);  // must not crash
    ser::Reader r(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    (void)consensus::QuorumCert::deserialize(r);
    ser::Reader r2(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    (void)consensus::Block::deserialize(r2);
    ser::Reader r3(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    (void)pacemaker::SyncCert::deserialize(r3);
  }
  SUCCEED();
}

/// Mutated (bit-flipped) valid frames: decode must never crash, and any
/// successfully decoded certificate must fail verification unless the
/// mutation missed the signed bytes.
TEST(FuzzTest, MutatedFramesNeverVerifyWrongly) {
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 4, 9);
  MessageCodec codec;
  pacemaker::register_pacemaker_messages(codec);
  crypto::QuorumAggregator agg(crypto::AuthView(auth.get()), pacemaker::view_msg_statement(7),
                               2);
  agg.add(crypto::threshold_share(auth->signer_for(0), pacemaker::view_msg_statement(7)));
  agg.add(crypto::threshold_share(auth->signer_for(1), pacemaker::view_msg_statement(7)));
  const pacemaker::VcMsg valid(pacemaker::SyncCert(7, agg.aggregate()));
  const auto frame = MessageCodec::encode(valid);

  Rng rng(0xBADC0DE);
  int decoded_count = 0;
  for (int round = 0; round < 2000; ++round) {
    auto mutated = frame;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1U << rng.next_below(8));
    }
    const MessagePtr msg = codec.decode(mutated);
    if (msg == nullptr || msg->type_id() != pacemaker::kVcMsg) continue;
    ++decoded_count;
    const auto& vc = static_cast<const pacemaker::VcMsg&>(*msg);
    if (vc.cert() == valid.cert()) continue;  // mutation hit padding only
    EXPECT_FALSE(vc.cert().verify(crypto::AuthView(auth.get()), 2, &pacemaker::view_msg_statement))
        << "a mutated certificate verified (round " << round << ")";
  }
  EXPECT_GT(decoded_count, 0) << "fuzz produced no decodable mutants — loosen the mutation";
}

/// Random protocol messages (valid signatures, random views/types/orders)
/// fired at a LumierePacemaker: no crash, monotone views, clock-view
/// coupling preserved.
TEST(FuzzTest, LumiereSurvivesRandomMessageStorm) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    testutil::PacemakerHarness harness(4, 0);
    core::LumierePacemaker::Options options;
    options.schedule_seed = 11;
    core::LumierePacemaker pm(harness.params(), harness.self(), harness.signer(),
                              harness.wiring(), options);
    harness.attach(&pm);
    pm.start();

    Rng rng(seed);
    View last_view = -1;
    for (int round = 0; round < 3000; ++round) {
      const auto dice = rng.next_below(5);
      const View v = static_cast<View>(rng.next_below(200));
      const auto from = static_cast<ProcessId>(1 + rng.next_below(3));
      switch (dice) {
        case 0:
          harness.inject_view_msg(from, v);
          break;
        case 1:
          harness.inject_epoch_msg(from, v);  // mostly non-epoch views: ignored
          break;
        case 2:
          harness.inject_vc(v);
          break;
        case 3:
          harness.inject_qc(v);
          break;
        default:
          harness.run_to(harness.sim().now() + Duration::millis(rng.next_in(1, 20)));
          break;
      }
      harness.settle();
      ASSERT_GE(pm.current_view(), last_view) << "view regressed under fuzz";
      last_view = pm.current_view();
      ASSERT_EQ(pm.math().epoch_of(pm.current_view()), pm.current_epoch())
          << "Lemma 5.1 violated under fuzz";
    }
  }
}

/// A cluster where one Byzantine process sprays random (signed) pacemaker
/// messages at everyone must stay live and safe.
TEST(FuzzTest, ClusterSurvivesByzantineSpam) {
  class SpamBehavior final : public adversary::Behavior {
   public:
    void on_view_entered(TimePoint, View v, const adversary::Toolkit& toolkit) override {
      Rng rng(static_cast<std::uint64_t>(v) * 77 + 13);
      for (int i = 0; i < 8; ++i) {
        const View target = static_cast<View>(rng.next_below(500));
        MessagePtr msg;
        if (rng.next_bool(0.5)) {
          msg = std::make_shared<pacemaker::ViewMsg>(
              target, crypto::threshold_share(*toolkit.signer,
                                              pacemaker::view_msg_statement(target)));
        } else {
          msg = std::make_shared<pacemaker::EpochViewMsg>(
              target, crypto::threshold_share(*toolkit.signer,
                                              pacemaker::epoch_msg_statement(target)));
        }
        toolkit.raw_send(static_cast<ProcessId>(rng.next_below(toolkit.params->n)), msg);
      }
    }
    [[nodiscard]] const char* name() const override { return "spam"; }
  };

  runtime::ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(303);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.behaviors(adversary::byzantine_set(
      {3}, [](ProcessId) { return std::make_unique<SpamBehavior>(); }));
  runtime::Cluster cluster(options);
  cluster.run_for(Duration::seconds(30));
  EXPECT_GE(cluster.metrics().decisions().size(), 20U) << "spam must not stall the cluster";
}

}  // namespace
}  // namespace lumiere
