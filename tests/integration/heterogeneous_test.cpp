// Heterogeneous clusters — the deployment shapes ScenarioBuilder's
// per-node overrides exist for. A node running a *different* view
// synchronizer is, from the majority protocol's perspective, at worst
// Byzantine: as long as deviants stay within the f budget, the majority's
// honest nodes must keep synchronizing and deciding. (A full 50/50 split
// of two incompatible synchronizers is NOT expected to work — that would
// contradict the f-resilience bound, not confirm the harness.)
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

TEST(HeterogeneousClusterTest, LumiereMajorityToleratesRoundRobinMinority) {
  // n = 7, f = 2: five nodes run Lumiere, two run round-robin. The five
  // Lumiere nodes are exactly a 2f+1 quorum and must stay synchronized.
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(7, Duration::millis(10)))
      .pacemaker("lumiere")
      .seed(301)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.node(5).pacemaker("round-robin");
  builder.node(6).pacemaker("round-robin");
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(40));

  View lumiere_min = std::numeric_limits<View>::max();
  View lumiere_max = -1;
  for (ProcessId id = 0; id < 5; ++id) {
    lumiere_min = std::min(lumiere_min, cluster.node(id).current_view());
    lumiere_max = std::max(lumiere_max, cluster.node(id).current_view());
  }
  EXPECT_GT(lumiere_min, 20) << "Lumiere quorum stalled against the round-robin minority";
  // Synchronized: the Lumiere nodes stay within a couple of view pairs of
  // each other (Gamma-bounded skew, not drift-apart).
  EXPECT_LE(lumiere_max - lumiere_min, 8) << "Lumiere nodes drifted apart";
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
  // The per-node override is visible on the node itself.
  EXPECT_EQ(cluster.node(6).protocol().pacemaker, "round-robin");
  EXPECT_STREQ(cluster.node(6).pacemaker().name(), "round-robin");
  EXPECT_EQ(cluster.node(0).protocol().pacemaker, "lumiere");
}

TEST(HeterogeneousClusterTest, MixedPacemakersPlusByzantineWithinBudget) {
  // Heterogeneity composes with real faults: one fever deviant plus one
  // mute Byzantine node still leaves 2f+1 = 5 Lumiere-honest processors.
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(7, Duration::millis(10)))
      .pacemaker("lumiere")
      .seed(302)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.node(5).pacemaker("fever");
  builder.node(6).behavior([] { return std::make_unique<adversary::MuteBehavior>(); });
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(40));

  View lumiere_min = std::numeric_limits<View>::max();
  for (ProcessId id = 0; id < 5; ++id) {
    lumiere_min = std::min(lumiere_min, cluster.node(id).current_view());
  }
  EXPECT_GT(lumiere_min, 20) << "mixed deviance within f stalled the quorum";
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
  EXPECT_TRUE(cluster.node(6).is_byzantine());
  EXPECT_FALSE(cluster.node(5).is_byzantine()) << "protocol deviants are not flagged Byzantine";
}

TEST(HeterogeneousClusterTest, PerNodeDriftAndJoinOverrides) {
  // Local conditions vary per node: one late joiner, one fast clock, one
  // slow clock. Lumiere absorbs all three (clock bumps re-anchor drift,
  // the pre-join inbox catches up the straggler).
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
      .pacemaker("lumiere")
      .seed(303)
      .gst(TimePoint(Duration::millis(500).ticks()))
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.node(1).join_time(TimePoint(Duration::millis(400).ticks()));
  builder.node(2).drift_ppm(20'000);
  builder.node(3).drift_ppm(-20'000);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(30));
  EXPECT_GT(cluster.min_honest_view(), 20);
  EXPECT_GE(cluster.metrics().decisions().size(), 10U);
  EXPECT_EQ(cluster.node(2).local_clock().drift_ppm(), 20'000);
  EXPECT_EQ(cluster.node(3).local_clock().drift_ppm(), -20'000);
}

TEST(HeterogeneousClusterTest, PerNodePayloadProviderFeedsOnlyThatProposer) {
  // Per-node workload override: only node 0 proposes non-empty payloads.
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(304)
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  builder.node(0).payload([](View) { return std::vector<std::uint8_t>{1, 2, 3}; });
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(20));
  const auto& entries = cluster.node(1).ledger().entries();
  ASSERT_FALSE(entries.empty());
  bool saw_payload = false;
  bool saw_empty = false;
  for (const auto& entry : entries) {
    (entry.payload.empty() ? saw_empty : saw_payload) = true;
  }
  EXPECT_TRUE(saw_payload) << "node 0's payloads never committed";
  EXPECT_TRUE(saw_empty) << "other proposers should commit empty blocks";
}

}  // namespace
}  // namespace lumiere::runtime
