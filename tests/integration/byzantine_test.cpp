// Liveness under the full Byzantine budget f, across fault flavors, and
// safety of the chained cores under active attackers. Progress and
// safety are asserted through the shared oracles (fuzz/oracles.h).
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "runtime/cluster.h"
#include "testutil/oracles.h"

namespace lumiere::runtime {
namespace {

using testutil::oracle_ok;

ScenarioBuilder base_options(std::string kind, std::uint32_t n, std::uint64_t seed) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker(kind);
  options.seed(seed);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  return options;
}

std::vector<ProcessId> first_f(std::uint32_t f) {
  std::vector<ProcessId> ids;
  for (ProcessId id = 0; id < f; ++id) ids.push_back(id);
  return ids;
}

struct ByzCase {
  std::string kind;
  const char* flavor;
};

class FullBudgetByzantine : public ::testing::TestWithParam<ByzCase> {};

TEST_P(FullBudgetByzantine, LiveWithFFaults) {
  const ByzCase c = GetParam();
  const std::uint32_t n = 7;  // f = 2
  ScenarioBuilder options = base_options(c.kind, n, 41);
  const std::string flavor = c.flavor;
  options.behaviors(adversary::byzantine_set(
      first_f(2), [flavor](ProcessId) -> std::unique_ptr<adversary::Behavior> {
        if (flavor == "mute") return std::make_unique<adversary::MuteBehavior>();
        if (flavor == "silent-leader")
          return std::make_unique<adversary::SilentLeaderBehavior>();
        if (flavor == "crash")
          return std::make_unique<adversary::CrashBehavior>(
              TimePoint(Duration::seconds(2).ticks()));
        return std::make_unique<adversary::QcWithholderBehavior>();
      }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(120));
  EXPECT_TRUE(oracle_ok(fuzz::check_decision_liveness(cluster, TimePoint::origin(),
                                                      Duration::seconds(120), 8)))
      << c.kind << " with " << c.flavor << " faults stalled";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullBudgetByzantine,
    ::testing::Values(ByzCase{"lumiere", "mute"},
                      ByzCase{"lumiere", "silent-leader"},
                      ByzCase{"lumiere", "crash"},
                      ByzCase{"lumiere", "qc-withhold"},
                      ByzCase{"basic-lumiere", "mute"},
                      ByzCase{"basic-lumiere", "silent-leader"},
                      ByzCase{"lp22", "mute"},
                      ByzCase{"lp22", "silent-leader"},
                      ByzCase{"fever", "silent-leader"},
                      ByzCase{"cogsworth", "silent-leader"},
                      ByzCase{"nk20", "silent-leader"},
                      ByzCase{"round-robin", "mute"}),
    [](const ::testing::TestParamInfo<ByzCase>& info) {
      std::string name = info.param.kind + "_" + info.param.flavor;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---- chained-core safety under active attackers --------------------------
// The matrix above exercises the view-sync layer; these pin the *cores*:
// an equivocating leader or a QC withholder must not fork (or wedge) the
// chained cores that actually commit blocks.

struct CoreAttack {
  const char* core;
  const char* behavior;  ///< adversary::make_behavior name
};

class ChainedCoreByzantine : public ::testing::TestWithParam<CoreAttack> {};

TEST_P(ChainedCoreByzantine, AttackerCannotViolateSafetyOrStallCommits) {
  const CoreAttack attack = GetParam();
  ScenarioBuilder options = base_options("lumiere", 7, 47);
  options.core(attack.core);
  const std::string behavior = attack.behavior;
  options.behaviors(adversary::byzantine_set(
      first_f(2), [behavior](ProcessId) { return adversary::make_behavior(behavior); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));

  EXPECT_TRUE(oracle_ok(fuzz::check_safety(cluster)))
      << attack.core << " under " << attack.behavior;
  EXPECT_TRUE(oracle_ok(fuzz::check_view_monotonicity(cluster)));
  EXPECT_TRUE(oracle_ok(fuzz::check_commit_liveness(cluster, TimePoint::origin(),
                                                    Duration::seconds(60), 3)))
      << attack.core << " stopped committing under " << attack.behavior;
}

INSTANTIATE_TEST_SUITE_P(
    Cores, ChainedCoreByzantine,
    ::testing::Values(CoreAttack{"chained-hotstuff", "equivocator"},
                      CoreAttack{"chained-hotstuff", "qc-withholder"},
                      CoreAttack{"hotstuff-2", "equivocator"},
                      CoreAttack{"hotstuff-2", "qc-withholder"}),
    [](const ::testing::TestParamInfo<CoreAttack>& info) {
      std::string name = std::string(info.param.core) + "_" + info.param.behavior;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ByzantineEdge, LumiereSilentLeaderDelayIsOfFaGammaNotN) {
  // Smooth optimistic responsiveness (Theorem 1.1 (3)): the worst
  // inter-decision gap with f_a silent leaders is O(f_a * Gamma) —
  // at most 4 * f_a * Gamma here, since each faulty leader owns a pair
  // of consecutive views in each of two adjacent segments in the worst
  // permutation placement — and crucially *independent of n*.
  const std::uint32_t f_a = 2;
  auto worst_gap = [&](std::uint32_t n, std::uint64_t seed) {
    ScenarioBuilder options = base_options("lumiere", n, seed);
    options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    options.behaviors(adversary::byzantine_set(first_f(f_a), [](ProcessId) {
      return std::make_unique<adversary::SilentLeaderBehavior>();
    }));
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(120));
    const auto gap = cluster.metrics().max_decision_gap(TimePoint::origin(), /*warmup=*/40);
    EXPECT_TRUE(gap.has_value());
    return gap.value_or(Duration::zero());
  };

  const Duration gamma = Duration::millis(100);  // 2(x+2) Delta
  const Duration bound = gamma * (4 * f_a) + Duration::millis(20);
  const Duration gap_small = worst_gap(7, 43);
  const Duration gap_large = worst_gap(13, 43);
  EXPECT_LE(gap_small, bound) << "n=7: delay must be O(f_a * Gamma)";
  EXPECT_LE(gap_large, bound) << "n=13: the bound must not grow with n";
}

}  // namespace
}  // namespace lumiere::runtime
