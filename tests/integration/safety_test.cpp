// SMR safety under active equivocation: no two honest ledgers diverge,
// and view-synchronization conditions (1)-(2) of Section 2 hold.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

TEST(SafetyTest, EquivocatingLeadersCannotForkLedgers) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(61);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::EquivocatorBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(120));

  const auto honest = cluster.honest_ids();
  // Progress despite equivocators.
  std::size_t longest = 0;
  for (const ProcessId id : honest) {
    longest = std::max(longest, cluster.node(id).ledger().size());
  }
  EXPECT_GE(longest, 3U) << "equivocators must not stall the honest majority";
  // Safety: all honest ledgers prefix-consistent.
  for (const ProcessId a : honest) {
    for (const ProcessId b : honest) {
      EXPECT_TRUE(cluster.node(a).ledger().prefix_consistent_with(cluster.node(b).ledger()))
          << "ledger fork between " << a << " and " << b;
    }
  }
}

TEST(SafetyTest, EquivocationAcrossPacemakers) {
  for (const std::string kind :
       {"round-robin", "lp22", "basic-lumiere"}) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
    options.pacemaker(kind);
    options.core("chained-hotstuff");
    options.seed(62);
    options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
    options.behaviors(adversary::byzantine_set(
        {3}, [](ProcessId) { return std::make_unique<adversary::EquivocatorBehavior>(); }));
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(60));
    const auto honest = cluster.honest_ids();
    for (const ProcessId a : honest) {
      EXPECT_TRUE(cluster.node(a).ledger().prefix_consistent_with(cluster.node(honest[0]).ledger()))
          << kind << ": ledger fork at node " << a;
    }
  }
}

TEST(SafetyTest, ViewMonotonicityAcrossAllProtocols) {
  // Condition (1) of the view-synchronization task, checked event-wise.
  for (const std::string kind :
       {"cogsworth", "lp22", "fever",
        "basic-lumiere", "lumiere"}) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(4, Duration::millis(10)));
    options.pacemaker(kind);
    options.seed(63);
    options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100), Duration::millis(5)));
    Cluster cluster(options);
    cluster.start();
    std::vector<View> last(4, -1);
    const TimePoint deadline = TimePoint::origin() + Duration::seconds(10);
    while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
      cluster.sim().step();
      for (ProcessId id = 0; id < 4; ++id) {
        const View v = cluster.node(id).current_view();
        ASSERT_GE(v, last[id]) << kind << ": view regressed at node " << id;
        last[id] = v;
      }
    }
  }
}

}  // namespace
}  // namespace lumiere::runtime
