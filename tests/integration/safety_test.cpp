// SMR safety under active equivocation: no two honest ledgers diverge,
// and view-synchronization conditions (1)-(2) of Section 2 hold. The
// checks are the shared oracles (fuzz/oracles.h) — the same library the
// scenario fuzzer applies to millions of sampled compositions.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"
#include "testutil/oracles.h"

namespace lumiere::runtime {
namespace {

using testutil::oracle_ok;

TEST(SafetyTest, EquivocatingLeadersCannotForkLedgers) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(61);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::EquivocatorBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(120));

  // Progress despite equivocators.
  EXPECT_TRUE(oracle_ok(fuzz::check_commit_liveness(cluster, TimePoint::origin(),
                                                    Duration::seconds(120), 3)))
      << "equivocators must not stall the honest majority";
  // Safety: all honest ledgers prefix-consistent.
  EXPECT_TRUE(oracle_ok(fuzz::check_safety(cluster)));
}

TEST(SafetyTest, EquivocationAcrossPacemakers) {
  for (const std::string kind :
       {"round-robin", "lp22", "basic-lumiere"}) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
    options.pacemaker(kind);
    options.core("chained-hotstuff");
    options.seed(62);
    options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
    options.behaviors(adversary::byzantine_set(
        {3}, [](ProcessId) { return std::make_unique<adversary::EquivocatorBehavior>(); }));
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(60));
    EXPECT_TRUE(oracle_ok(fuzz::check_safety(cluster))) << kind;
  }
}

TEST(SafetyTest, ViewMonotonicityAcrossAllProtocols) {
  // Condition (1) of the view-synchronization task, checked event-wise
  // over the structured trace (every view entry on every node).
  for (const std::string kind :
       {"cogsworth", "lp22", "fever",
        "basic-lumiere", "lumiere"}) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(4, Duration::millis(10)));
    options.pacemaker(kind);
    options.seed(63);
    options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100), Duration::millis(5)));
    Cluster cluster(options);
    cluster.run_for(Duration::seconds(10));
    EXPECT_TRUE(oracle_ok(fuzz::check_view_monotonicity(cluster))) << kind;
    EXPECT_FALSE(cluster.trace().of_kind(sim::TraceKind::kViewEntered).empty())
        << kind << ": no view entries traced — the monotonicity check would be vacuous";
  }
}

}  // namespace
}  // namespace lumiere::runtime
