// Bounded clock drift (the Section 2/4 remark): the paper's analysis
// assumes lc(p) advances in real time after GST "for simplicity", and
// notes it extends to bounded drift. These tests check the implementation
// delivers that extension: liveness, steady-state quiescence and the
// honest-gap bound survive per-processor rate skews.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

struct DriftCase {
  std::int64_t ppm_max;
  std::uint32_t f_a;
};

class DriftLiveness : public ::testing::TestWithParam<DriftCase> {};

TEST_P(DriftLiveness, LumiereDecidesDespiteDrift) {
  const DriftCase c = GetParam();
  const TimePoint gst(Duration::millis(500).ticks());
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.gst(gst);
  options.seed(55);
  options.join_stagger(Duration::millis(200));
  options.drift_ppm_max(c.ppm_max);
  options.delay(std::make_shared<sim::PreGstChaosDelay>(
      gst, Duration::micros(500), Duration::millis(3), Duration::seconds(2)));
  if (c.f_a > 0) {
    std::vector<ProcessId> byz;
    for (ProcessId id = 0; id < c.f_a; ++id) byz.push_back(id);
    options.behaviors(adversary::byzantine_set(
        byz, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  }
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(90));

  const auto first = cluster.metrics().latency_to_first_decision(gst);
  ASSERT_TRUE(first.has_value()) << "no decision after GST with drift " << c.ppm_max << "ppm";
  const std::size_t after =
      cluster.metrics().decisions().size() - cluster.metrics().first_decision_index_after(gst);
  EXPECT_GE(after, 50U) << "drift " << c.ppm_max << "ppm starved decisions";
}

INSTANTIATE_TEST_SUITE_P(Rates, DriftLiveness,
                         ::testing::Values(DriftCase{200, 0}, DriftCase{2'000, 0},
                                           DriftCase{20'000, 0}, DriftCase{2'000, 2},
                                           DriftCase{20'000, 2}),
                         [](const ::testing::TestParamInfo<DriftCase>& info) {
                           return "ppm" + std::to_string(info.param.ppm_max) + "_fa" +
                                  std::to_string(info.param.f_a);
                         });

TEST(ClockDriftTest, SteadyStateHonestGapStaysBoundedUnderDrift) {
  // Lemma 5.9's conclusion (hg_{f+1} <= Gamma once synchronized) gains a
  // drift term; with 1% skews it must still sit far below 2*Gamma.
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(10));
  ScenarioBuilder options;
  options.params(params);
  options.pacemaker("lumiere");
  options.seed(56);
  options.drift_ppm_max(10'000);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(5));  // well past warmup

  const Duration gamma = params.delta_cap * 2 * (params.x + 2);
  const auto tracker = cluster.honest_gap_tracker();
  for (int sample = 0; sample < 40; ++sample) {
    cluster.run_for(Duration::millis(250));
    EXPECT_LE(tracker.gap(params.f + 1), gamma * 2)
        << "honest gap exploded at sample " << sample;
  }
}

TEST(ClockDriftTest, HeavySyncStillQuiescesUnderDrift) {
  // The steady-state mechanism (Section 3.5) must keep working: after
  // warmup, drifted clocks do not reintroduce heavy epoch changes.
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(57);
  options.drift_ppm_max(5'000);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));
  const auto heavy_after_warmup = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  cluster.run_for(Duration::seconds(40));
  EXPECT_EQ(cluster.metrics().count_for_type(pacemaker::kEpochViewMsg), heavy_after_warmup)
      << "drift re-triggered heavy epoch synchronization in the steady state";
}

TEST(ClockDriftTest, DriftAssignmentIsDeterministicBySeed) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(58);
  options.drift_ppm_max(1'000);
  Cluster a(options);
  Cluster b(options);
  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_EQ(a.node(id).local_clock().drift_ppm(), b.node(id).local_clock().drift_ppm());
    EXPECT_LE(std::abs(a.node(id).local_clock().drift_ppm()), 1'000);
  }
}

}  // namespace
}  // namespace lumiere::runtime
