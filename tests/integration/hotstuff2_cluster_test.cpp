// HotStuff-2 as the underlying protocol of a full cluster: the pacemakers
// synchronize it exactly as they do the 3-phase core, and the two-phase
// commit rule shows up as a one-view-earlier commit frontier.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "consensus/kv_store.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

std::function<std::vector<std::uint8_t>(View)> tagged_workload() {
  return [](View v) {
    return consensus::KvStore::set_command("view", std::to_string(v));
  };
}

crypto::Digest replay_all(const consensus::Ledger& ledger, std::size_t prefix) {
  consensus::KvStore store;
  for (std::size_t i = 0; i < prefix && i < ledger.size(); ++i) {
    store.apply(ledger.entries()[i].payload);
  }
  return store.state_digest();
}

TEST(HotStuff2ClusterTest, ReplicasConvergeUnderLumiere) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("hotstuff-2");
  options.seed(77);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(200),
                                                      Duration::millis(3)));
  options.workload(tagged_workload());
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));

  std::size_t shortest = SIZE_MAX;
  for (const ProcessId id : cluster.honest_ids()) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GE(shortest, 10U) << "too few commits to be meaningful";
  const crypto::Digest reference = replay_all(cluster.node(0).ledger(), shortest);
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_EQ(replay_all(cluster.node(id).ledger(), shortest), reference)
        << "replica " << id << " diverged";
    EXPECT_TRUE(cluster.node(id).ledger().prefix_consistent_with(cluster.node(0).ledger()));
  }
}

TEST(HotStuff2ClusterTest, SurvivesByzantineSilentLeaders) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("hotstuff-2");
  options.seed(78);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.workload(tagged_workload());
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));

  std::size_t shortest = SIZE_MAX;
  for (const ProcessId id : cluster.honest_ids()) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GE(shortest, 5U);
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_TRUE(cluster.node(id).ledger().prefix_consistent_with(cluster.node(2).ledger()));
  }
}

TEST(HotStuff2ClusterTest, CommitFrontierLeadsThreePhaseCore) {
  // Identical runs except for the core: the two-phase rule commits each
  // block one QC earlier, so over the same wall-clock window the HS2
  // ledger's committed frontier is ahead (and never behind).
  auto run = [](std::string core) {
    ScenarioBuilder options;
    options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
    options.pacemaker("lumiere");
    options.core(core);
    options.seed(79);
    options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    options.workload(tagged_workload());
    auto cluster = std::make_unique<Cluster>(std::move(options));
    cluster->run_for(Duration::seconds(15));
    const auto& entries = cluster->node(0).ledger().entries();
    return entries.empty() ? View{-1} : entries.back().view;
  };
  const View hs2_frontier = run("hotstuff-2");
  const View hs3_frontier = run("chained-hotstuff");
  EXPECT_GT(hs2_frontier, 0);
  EXPECT_GE(hs2_frontier, hs3_frontier);
}

/// HotStuff-2 must stay live under every pacemaker, exactly like the
/// 3-phase core (the pacemaker-core interface is core-agnostic).
class Hs2AcrossPacemakers : public ::testing::TestWithParam<std::string> {};

TEST_P(Hs2AcrossPacemakers, CommitsUnderEveryPacemaker) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker(GetParam());
  options.core("hotstuff-2");
  options.seed(80);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.workload(tagged_workload());
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(45));
  std::size_t shortest = SIZE_MAX;
  for (const ProcessId id : cluster.honest_ids()) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  EXPECT_GE(shortest, 5U) << GetParam() << " stalled HotStuff-2";
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Hs2AcrossPacemakers,
    ::testing::Values("round-robin", "cogsworth",
                      "nk20", "raresync",
                      "lp22", "fever",
                      "basic-lumiere", "lumiere"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace lumiere::runtime
