// Broad property sweeps: the per-run invariants of Section 2 (the BVS
// task) and Section 5 (the lemmas), checked eventwise over a grid of
// protocol x Byzantine-behavior x seed combinations. Where the invariant
// sweep in tests/core pins Lumiere's internals, this suite pins the
// *protocol-agnostic* contract every pacemaker must satisfy, and the
// honest-gap lemma under richer adversaries.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

enum class Attack { kSilentLeader, kQcWithholder, kEquivocator, kEpochStorm, kSelectiveQc,
                    kCrashMidway };

const char* to_string(Attack a) {
  switch (a) {
    case Attack::kSilentLeader:
      return "silent_leader";
    case Attack::kQcWithholder:
      return "qc_withholder";
    case Attack::kEquivocator:
      return "equivocator";
    case Attack::kEpochStorm:
      return "epoch_storm";
    case Attack::kSelectiveQc:
      return "selective_qc";
    case Attack::kCrashMidway:
      return "crash_midway";
  }
  return "?";
}

std::unique_ptr<adversary::Behavior> make_attack(Attack a, const ProtocolParams& params) {
  switch (a) {
    case Attack::kSilentLeader:
      return std::make_unique<adversary::SilentLeaderBehavior>();
    case Attack::kQcWithholder:
      return std::make_unique<adversary::QcWithholderBehavior>();
    case Attack::kEquivocator:
      return std::make_unique<adversary::EquivocatorBehavior>();
    case Attack::kEpochStorm:
      return std::make_unique<adversary::EpochStormBehavior>(10 * params.n);
    case Attack::kSelectiveQc:
      return std::make_unique<adversary::SelectiveQcBehavior>(params.n / 2);
    case Attack::kCrashMidway:
      return std::make_unique<adversary::CrashBehavior>(
          TimePoint(Duration::seconds(5).ticks()));
  }
  return nullptr;
}

struct GridCase {
  std::string protocol;
  Attack attack;
  std::uint64_t seed;
};

class ProtocolAttackGrid : public ::testing::TestWithParam<GridCase> {};

/// Condition (1) of the BVS task — views never regress — plus liveness
/// under every attack, for every protocol, eventwise.
TEST_P(ProtocolAttackGrid, ViewMonotonicityAndLiveness) {
  const GridCase c = GetParam();
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(10));
  ScenarioBuilder options;
  options.params(params);
  options.pacemaker(c.protocol);
  options.seed(c.seed);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(200),
                                                      Duration::millis(4)));
  options.behaviors(adversary::byzantine_set(
      {5, 6}, [&, a = c.attack](ProcessId) { return make_attack(a, params); }));
  Cluster cluster(options);
  cluster.start();

  std::vector<View> last_view(7, -1);
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(30);
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    for (const ProcessId id : cluster.honest_ids()) {
      const View v = cluster.node(id).current_view();
      ASSERT_GE(v, last_view[id]) << "view regressed at node " << id << " under "
                                  << to_string(c.attack);
      last_view[id] = v;
    }
  }
  EXPECT_GE(cluster.metrics().decisions().size(), 5U)
      << c.protocol << " starved under "
      << to_string(c.attack);
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  std::uint64_t seed = 500;
  for (const std::string protocol :
       {"cogsworth", "nk20", "raresync",
        "lp22", "fever", "basic-lumiere",
        "lumiere"}) {
    for (const Attack attack :
         {Attack::kSilentLeader, Attack::kQcWithholder, Attack::kEquivocator,
          Attack::kEpochStorm, Attack::kSelectiveQc, Attack::kCrashMidway}) {
      cases.push_back({protocol, attack, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolAttackGrid, ::testing::ValuesIn(grid_cases()),
                         [](const ::testing::TestParamInfo<GridCase>& info) {
                           std::string name =
                               info.param.protocol;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name + "_" + to_string(info.param.attack);
                         });

// ---------------------------------------------------------------------
// Lemma 5.9(2): within an epoch, hg_{f+1} does not increase except to a
// value below Gamma — i.e. hg(t') <= max(hg(t), Gamma) for t < t' inside
// the epoch. Checked eventwise whenever all honest processors agree on
// the epoch (a sound subinterval of [start_e, end_e]), under a mix of
// faults and jittery delays.
// ---------------------------------------------------------------------

struct GapCase {
  std::uint64_t seed;
  std::uint32_t byzantine;
};

class GapLemmaSweep : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapLemmaSweep, HonestGapNeverGrowsAboveItselfOrGamma) {
  const GapCase c = GetParam();
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(c.seed);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(100),
                                                      Duration::millis(6)));
  if (c.byzantine > 0) {
    std::vector<ProcessId> byz;
    for (ProcessId id = 0; id < c.byzantine; ++id) byz.push_back(id);
    options.behaviors(adversary::byzantine_set(
        byz, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  }
  Cluster cluster(options);
  cluster.start();

  const ProtocolParams& params = cluster.scenario().params;
  const Duration gamma = params.delta_cap * 2 * (params.x + 2);
  const auto tracker = cluster.honest_gap_tracker();
  const std::uint32_t fplus1 = params.f + 1;

  auto honest_epoch_consensus = [&]() -> std::optional<Epoch> {
    std::optional<Epoch> common;
    for (const ProcessId id : cluster.honest_ids()) {
      const auto& pm = static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
      if (pm.parked()) return std::nullopt;  // boundary transition in progress
      const Epoch e = pm.current_epoch();
      if (common && *common != e) return std::nullopt;
      common = e;
    }
    return common;
  };

  bool tracking = false;
  Epoch tracked_epoch = -1;
  Duration watermark = Duration::zero();
  std::uint64_t checks = 0;
  const TimePoint deadline = TimePoint::origin() + Duration::seconds(20);
  while (!cluster.sim().idle() && cluster.sim().now() < deadline) {
    cluster.sim().step();
    const auto epoch = honest_epoch_consensus();
    if (!epoch) {
      tracking = false;
      continue;
    }
    const Epoch current = *epoch;
    const Duration gap = tracker.gap(fplus1);
    if (!tracking || tracked_epoch != current) {
      tracking = true;
      tracked_epoch = current;
      watermark = gap;  // restart the within-epoch watermark
      continue;
    }
    // Lemma 5.9(2): gap <= max(previous watermark, Gamma).
    ASSERT_LE(gap, std::max(watermark, gamma))
        << "hg_{f+1} grew above both its prior value and Gamma inside epoch "
        << current;
    watermark = std::max(watermark, gap);
    ++checks;
  }
  EXPECT_GT(checks, 1000U) << "sweep too short to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(SeedsAndFaults, GapLemmaSweep,
                         ::testing::Values(GapCase{21, 0}, GapCase{22, 1}, GapCase{23, 2},
                                           GapCase{24, 0}, GapCase{25, 2}, GapCase{26, 1}),
                         [](const ::testing::TestParamInfo<GapCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_byz" +
                                  std::to_string(info.param.byzantine);
                         });

// ---------------------------------------------------------------------
// Lemma 5.15(1)+(2) in the steady state, across seeds: once an epoch has
// a timely start, every honest-led view pair decides and nobody sends
// epoch-view messages.
// ---------------------------------------------------------------------

class SteadyStateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteadyStateSweep, HeavySyncQuiescesAcrossSeeds) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker("lumiere");
  options.seed(GetParam());
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(300),
                                                      Duration::millis(2)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(15));
  std::uint64_t sent = 0;
  for (const ProcessId id : cluster.honest_ids()) {
    sent += static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker())
                .epoch_msgs_sent();
  }
  const std::uint64_t baseline = sent;
  cluster.run_for(Duration::seconds(30));
  sent = 0;
  for (const ProcessId id : cluster.honest_ids()) {
    sent += static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker())
                .epoch_msgs_sent();
  }
  EXPECT_EQ(sent, baseline) << "heavy synchronization re-appeared after warmup";
  EXPECT_GE(cluster.metrics().decisions().size(), 100U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteadyStateSweep,
                         ::testing::Values(31ULL, 32ULL, 33ULL, 34ULL, 35ULL, 36ULL, 37ULL,
                                           38ULL));

}  // namespace
}  // namespace lumiere::runtime
