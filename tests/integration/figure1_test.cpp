// The Figure 1 scenario as a test. On a fast network (delta << Delta), a
// single silent Byzantine leader costs LP22 up to a whole epoch of dead
// time — Omega(n * Delta), growing with n, because clocks never bump on
// QCs and the epoch has f+1 views. Lumiere's clock bumping caps the
// damage at O(Gamma) regardless of n. (bench_fig1 prints the full
// timeline; this test pins the scaling.)
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "adversary/delay_adversary.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

Duration worst_steady_gap(std::string kind, std::uint32_t n, std::uint64_t seed) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(n, Duration::millis(10)));
  options.pacemaker(kind);
  options.seed(seed);
  // delta << Delta: QCs race ahead of clocks.
  options.delay(std::make_shared<adversary::UniformFastDelay>(Duration::micros(200)));
  // One silent-leader Byzantine process.
  options.behaviors(adversary::byzantine_set(
      {3}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));
  const auto gap = cluster.metrics().max_decision_gap(TimePoint::origin(), /*warmup=*/10);
  EXPECT_TRUE(gap.has_value()) << kind << " n=" << n
                               << " produced too few decisions";
  return gap.value_or(Duration::zero());
}

TEST(Figure1Test, Lp22DeadTimeGrowsLinearlyWithN) {
  // Gamma_LP22 = (x+1) Delta = 40ms; the dead window after the failure is
  // ~(position+1) * Gamma, maximized at the epoch's last view: (f+1)*Gamma.
  const Duration small = worst_steady_gap("lp22", 4, 71);   // f+1 = 2
  const Duration large = worst_steady_gap("lp22", 31, 71);  // f+1 = 11
  // ~80ms vs ~440ms: assert clear growth.
  EXPECT_GE(large, small * 3) << "LP22's single-fault stall must grow with n "
                              << "(small=" << small << ", large=" << large << ")";
  EXPECT_GE(large, Duration::millis(350)) << "n=31 stall should approach (f+1)*Gamma";
}

TEST(Figure1Test, LumiereDeadTimeBoundedInN) {
  // Lumiere: a single faulty leader owns one view pair per segment; the
  // worst contiguous run is two adjacent pairs (segment bridge) = 4 views
  // = 4 * Gamma = 400ms, for every n.
  const Duration bound = Duration::millis(100) * 4 + Duration::millis(20);
  const Duration small = worst_steady_gap("lumiere", 4, 71);
  const Duration large = worst_steady_gap("lumiere", 31, 71);
  EXPECT_LE(small, bound);
  EXPECT_LE(large, bound) << "Lumiere's stall must not grow with n";
}

TEST(Figure1Test, AtScaleLumiereBeatsLp22) {
  // The paper's headline comparison at a size where the asymptotics bite.
  const Duration lp22 = worst_steady_gap("lp22", 31, 72);
  const Duration lumiere = worst_steady_gap("lumiere", 31, 72);
  EXPECT_LT(lumiere, lp22)
      << "one Byzantine leader must hurt LP22 more than Lumiere at n=31";
}

}  // namespace
}  // namespace lumiere::runtime
