// The hard liveness setting: staggered joins, pre-GST chaos, GST strikes
// late. Every BVS protocol claiming partial-synchrony correctness must
// produce decisions after GST. (Fever is exempt — its model *requires*
// the synchronized start, which is the paper's point; we run it with
// joins synchronized but chaos pre-GST.)
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "testutil/oracles.h"

namespace lumiere::runtime {
namespace {

struct HardCase {
  std::string kind;
  bool stagger_joins;
};

class HardLiveness : public ::testing::TestWithParam<HardCase> {};

TEST_P(HardLiveness, DecisionsAfterLateGst) {
  const HardCase c = GetParam();
  const TimePoint gst(Duration::seconds(1).ticks());
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10)));
  options.pacemaker(c.kind);
  options.gst(gst);
  options.seed(29);
  options.join_stagger(c.stagger_joins ? Duration::millis(400) : Duration::zero());
  options.delay(std::make_shared<sim::PreGstChaosDelay>(
      gst, Duration::micros(500), Duration::millis(3), Duration::seconds(3)));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(120));

  // The shared liveness oracle: at least 10 decisions in the 119s after
  // GST (the run covers [0, 120s] and GST strikes at 1s) — which also
  // implies the first post-GST decision exists.
  EXPECT_TRUE(testutil::oracle_ok(
      fuzz::check_decision_liveness(cluster, gst, Duration::seconds(119), 10)))
      << c.kind << ": stalled after late GST";
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, HardLiveness,
    ::testing::Values(HardCase{"round-robin", true},
                      HardCase{"cogsworth", true},
                      HardCase{"nk20", true},
                      HardCase{"lp22", true},
                      HardCase{"fever", false},
                      HardCase{"basic-lumiere", true},
                      HardCase{"lumiere", true}),
    [](const ::testing::TestParamInfo<HardCase>& info) {
      std::string name = info.param.kind;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + (info.param.stagger_joins ? "_staggered" : "_synced");
    });

}  // namespace
}  // namespace lumiere::runtime
