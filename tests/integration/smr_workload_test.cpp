// Full-stack SMR: client commands -> proposer payloads -> chained
// HotStuff commits -> deterministic state machine. Every honest replica
// must reach an identical KV state over equal committed prefixes, under
// faults and jitter.
#include <gtest/gtest.h>

#include "adversary/behaviors.h"
#include "consensus/kv_store.h"
#include "consensus/mempool.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {
namespace {

std::function<std::vector<std::uint8_t>(View)> kv_workload(int commands_per_block) {
  return [commands_per_block](View v) {
    consensus::Mempool pool(1 << 20);
    for (int i = 0; i < commands_per_block; ++i) {
      const auto serial = static_cast<long long>(v) * commands_per_block + i;
      // append-built strings: GCC 12's -Wrestrict false-positives on
      // operator+ chains under -O2 (PR105651), and CI builds -Werror.
      std::string key = "k";
      key.append(std::to_string(serial % 50));
      if (serial % 7 == 3) {
        pool.add(consensus::KvStore::del_command(key));
      } else {
        std::string value = "v";
        value.append(std::to_string(serial));
        pool.add(consensus::KvStore::set_command(key, value));
      }
    }
    return pool.next_batch();
  };
}

crypto::Digest replay_prefix(const consensus::Ledger& ledger, std::size_t prefix) {
  consensus::KvStore store;
  for (std::size_t i = 0; i < prefix && i < ledger.size(); ++i) {
    store.apply(ledger.entries()[i].payload);
  }
  return store.state_digest();
}

TEST(SmrWorkloadTest, ReplicasConvergeToIdenticalState) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(121);
  options.delay(std::make_shared<sim::UniformDelay>(Duration::micros(200),
                                                      Duration::millis(3)));
  options.workload(kv_workload(3));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(20));

  std::size_t shortest = SIZE_MAX;
  for (const ProcessId id : cluster.honest_ids()) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GE(shortest, 10U) << "too few commits to be meaningful";

  const crypto::Digest reference = replay_prefix(cluster.node(0).ledger(), shortest);
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_EQ(replay_prefix(cluster.node(id).ledger(), shortest), reference)
        << "replica " << id << " diverged";
  }
}

TEST(SmrWorkloadTest, StateConvergesDespiteByzantineLeaders) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(7, Duration::millis(10), /*x=*/4));
  options.pacemaker("lumiere");
  options.core("chained-hotstuff");
  options.seed(122);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)));
  options.workload(kv_workload(2));
  options.behaviors(adversary::byzantine_set(
      {0, 1}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(60));

  std::size_t shortest = SIZE_MAX;
  for (const ProcessId id : cluster.honest_ids()) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  ASSERT_GE(shortest, 5U);
  const crypto::Digest reference =
      replay_prefix(cluster.node(2).ledger(), shortest);
  for (const ProcessId id : cluster.honest_ids()) {
    EXPECT_EQ(replay_prefix(cluster.node(id).ledger(), shortest), reference);
  }
}

TEST(SmrWorkloadTest, PayloadsActuallyCarryCommands) {
  ScenarioBuilder options;
  options.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  options.pacemaker("basic-lumiere");
  options.core("chained-hotstuff");
  options.seed(123);
  options.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  options.workload(kv_workload(5));
  Cluster cluster(options);
  cluster.run_for(Duration::seconds(10));

  consensus::KvStore store;
  for (const auto& entry : cluster.node(0).ledger().entries()) {
    store.apply(entry.payload);
  }
  EXPECT_GT(store.applied_commands(), 50U);
  EXPECT_GT(store.size(), 10U);
}

}  // namespace
}  // namespace lumiere::runtime
