// The data-dissemination layer (src/dissem/): batch identity and PoA
// certificates, the refs payload encoding, the Disseminator's message
// protocol driven deterministically through injected callbacks, and the
// layer end to end under consensus on the simulator — including the
// acceptance property that proposal wire size is independent of batch
// payload size once proposals order references instead of bytes.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/authenticator.h"

#include <map>
#include <set>
#include <vector>

#include "dissem/disseminator.h"
#include "runtime/cluster.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::dissem {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

std::vector<std::uint8_t> bytes_of(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

BatchId id_for(ProcessId origin, std::uint64_t seq, const std::vector<std::uint8_t>& payload) {
  return BatchId{origin, seq,
                 crypto::Sha256::hash(
                     std::span<const std::uint8_t>(payload.data(), payload.size()))};
}

crypto::ThresholdSig aggregate_for(const crypto::Authenticator& auth, const BatchId& id,
                                   std::uint32_t m) {
  crypto::QuorumAggregator agg(crypto::AuthView(&auth), batch_statement(id), m);
  for (ProcessId signer = 0; signer < m; ++signer) {
    agg.add(crypto::threshold_share(auth.signer_for(signer), batch_statement(id)));
  }
  return agg.aggregate();
}

// ---- batch identity and certificates ---------------------------------

TEST(BatchTest, StatementBindsTheFullIdentity) {
  const auto payload = bytes_of(16, 0x11);
  const BatchId base = id_for(1, 7, payload);
  BatchId other_origin = base;
  other_origin.origin = 2;
  BatchId other_seq = base;
  other_seq.seq = 8;
  BatchId other_digest = base;
  other_digest.digest = crypto::Sha256::hash("different bytes");
  EXPECT_NE(batch_statement(base), batch_statement(other_origin));
  EXPECT_NE(batch_statement(base), batch_statement(other_seq));
  EXPECT_NE(batch_statement(base), batch_statement(other_digest));
}

TEST(BatchTest, CertVerifiesAndRejectsForgeries) {
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 17);
  const crypto::Authenticator& auth = *auth_owner;
  const auto payload = bytes_of(32, 0x22);
  const BatchId id = id_for(0, 1, payload);
  const BatchCert cert(id, aggregate_for(auth, id, params.small_quorum()));
  EXPECT_TRUE(cert.verify(crypto::AuthView(&auth), params));

  // The aggregate is bound to the identity: the same signature presented
  // for a different batch must not verify.
  BatchId other = id;
  other.seq = 2;
  const BatchCert transplanted(other, cert.sig());
  EXPECT_FALSE(transplanted.verify(crypto::AuthView(&auth), params));

  // Fewer than f+1 signers is no proof of availability.
  const BatchCert thin(id, aggregate_for(auth, id, 1));
  EXPECT_FALSE(thin.verify(crypto::AuthView(&auth), params));
}

TEST(BatchTest, CertSerializationRoundTrips) {
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 18);
  const crypto::Authenticator& auth = *auth_owner;
  const auto payload = bytes_of(24, 0x33);
  const BatchId id = id_for(3, 9, payload);
  const BatchCert cert(id, aggregate_for(auth, id, params.small_quorum()));
  ser::Writer w;
  cert.serialize(w);
  const std::vector<std::uint8_t> wire = std::move(w).take();
  ser::Reader r(std::span<const std::uint8_t>(wire.data(), wire.size()));
  const auto back = BatchCert::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(*back, cert);
  EXPECT_TRUE(back->verify(crypto::AuthView(&auth), params));
}

// ---- refs payload encoding -------------------------------------------

TEST(RefsPayloadTest, EncodeDecodeRoundTripAndMalformedRejection) {
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 19);
  const crypto::Authenticator& auth = *auth_owner;
  std::vector<BatchCert> refs;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const auto payload = bytes_of(16 * seq, static_cast<std::uint8_t>(seq));
    const BatchId id = id_for(1, seq, payload);
    refs.emplace_back(id, aggregate_for(auth, id, params.small_quorum()));
  }

  EXPECT_TRUE(encode_refs({}).empty()) << "an empty proposal stays empty on the wire";
  const std::vector<std::uint8_t> payload = encode_refs(refs);
  ASSERT_TRUE(is_refs_payload(std::span<const std::uint8_t>(payload.data(), payload.size())));
  const auto decoded =
      decode_refs(std::span<const std::uint8_t>(payload.data(), payload.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, refs);

  // A legacy inline batch can never parse as refs: command length
  // prefixes are bounded by the batch byte budget, far below the magic.
  const std::vector<std::uint8_t> legacy = {4, 0, 0, 0, 'a', 'b', 'c', 'd'};
  EXPECT_FALSE(is_refs_payload(std::span<const std::uint8_t>(legacy.data(), legacy.size())));
  EXPECT_FALSE(decode_refs(std::span<const std::uint8_t>(legacy.data(), legacy.size())));

  // Truncation, trailing garbage and a lying count all decode to nullopt.
  auto truncated = payload;
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(
      decode_refs(std::span<const std::uint8_t>(truncated.data(), truncated.size())));
  auto padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decode_refs(std::span<const std::uint8_t>(padded.data(), padded.size())));
  auto lying = payload;
  lying[4] = 200;  // count field claims far more certs than the bytes hold
  EXPECT_FALSE(decode_refs(std::span<const std::uint8_t>(lying.data(), lying.size())));
}

TEST(RefsPayloadTest, EncodingSizeIndependentOfBatchPayloadSize) {
  // The acceptance property at the encoding level: a reference to a
  // 16-byte batch and a reference to a 16-KiB batch occupy identical
  // wire bytes — the payload never rides in the proposal.
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 20);
  const crypto::Authenticator& auth = *auth_owner;
  const auto small = bytes_of(16, 0x01);
  const auto large = bytes_of(16 * 1024, 0x02);
  const BatchId small_id = id_for(0, 1, small);
  const BatchId large_id = id_for(0, 2, large);
  const std::vector<BatchCert> small_refs = {
      BatchCert(small_id, aggregate_for(auth, small_id, params.small_quorum()))};
  const std::vector<BatchCert> large_refs = {
      BatchCert(large_id, aggregate_for(auth, large_id, params.small_quorum()))};
  EXPECT_EQ(encode_refs(small_refs).size(), encode_refs(large_refs).size());
}

// ---- the Disseminator protocol, driven deterministically --------------

/// A Disseminator wired to a recording harness: sends, broadcasts,
/// scheduled timers and deliveries are captured; timers run only when
/// the test fires them, so every interleaving is explicit.
struct Harness {
  static constexpr std::uint32_t kN = 4;  // f = 1, small quorum = 2

  struct Sent {
    ProcessId to;  ///< kNoProcess = broadcast
    MessagePtr msg;
  };

  ProtocolParams params = ProtocolParams::for_n(kN, Duration::millis(10));
  std::unique_ptr<crypto::Authenticator> auth_owner =
      crypto::make_authenticator(crypto::kDefaultScheme, kN, 23);
  const crypto::Authenticator& auth = *auth_owner;
  std::vector<Sent> sent;
  std::vector<std::function<void()>> timers;
  std::vector<std::vector<std::uint8_t>> delivered;
  std::vector<std::uint64_t> acked_tokens;
  TimePoint now = TimePoint::origin();
  Disseminator engine;

  explicit Harness(ProcessId self, DissemSpec spec = {})
      : engine(params, crypto::AuthView(&auth), auth.signer_for(self), spec, callbacks()) {}

  DisseminatorCallbacks callbacks() {
    DisseminatorCallbacks cb;
    cb.send = [this](ProcessId to, MessagePtr msg) { sent.push_back({to, std::move(msg)}); };
    cb.broadcast = [this](MessagePtr msg) { sent.push_back({kNoProcess, std::move(msg)}); };
    cb.schedule = [this](Duration, std::function<void()> fn) {
      timers.push_back(std::move(fn));
    };
    cb.now = [this] { return now; };
    cb.lease_batch = [](std::vector<std::uint8_t>&) { return std::uint64_t{0}; };
    cb.ack_batch = [this](std::uint64_t token) { acked_tokens.push_back(token); };
    cb.deliver = [this](TimePoint, const std::vector<std::uint8_t>& payload) {
      delivered.push_back(payload);
    };
    return cb;
  }

  [[nodiscard]] std::size_t count_sent(std::uint32_t type_id, ProcessId to) const {
    std::size_t count = 0;
    for (const Sent& s : sent) {
      if (s.msg->type_id() == type_id && s.to == to) ++count;
    }
    return count;
  }

  [[nodiscard]] BatchCert cert_for(const BatchId& id) const {
    return BatchCert(id, aggregate_for(auth, id, params.small_quorum()));
  }

  /// Fires every currently scheduled timer once (reinsert nets etc.).
  void fire_timers() {
    std::vector<std::function<void()>> due;
    due.swap(timers);
    for (auto& fn : due) fn();
  }
};

TEST(DisseminatorTest, StoresPushesAcksOriginsAndServesFetches) {
  Harness h(/*self=*/2);
  const auto payload = bytes_of(40, 0x44);
  const BatchId id = id_for(0, 1, payload);

  h.engine.on_message(0, std::make_shared<BatchPushMsg>(id, payload));
  ASSERT_NE(h.engine.payload_of(id), nullptr);
  EXPECT_EQ(*h.engine.payload_of(id), payload);
  EXPECT_EQ(h.count_sent(kBatchAck, /*to=*/0), 1U) << "a stored push earns the origin an ack";

  // A push whose digest does not bind its bytes must be ignored — acking
  // it would help certify a batch this node cannot serve.
  BatchId forged = id;
  forged.seq = 2;
  h.engine.on_message(0, std::make_shared<BatchPushMsg>(forged, bytes_of(8, 0x55)));
  EXPECT_EQ(h.engine.payload_of(forged), nullptr);
  EXPECT_EQ(h.count_sent(kBatchAck, /*to=*/0), 1U);

  // A stored batch is served to any fetching replica.
  h.engine.on_message(1, std::make_shared<BatchFetchMsg>(id));
  EXPECT_EQ(h.count_sent(kBatchPush, /*to=*/1), 1U);
  EXPECT_EQ(h.engine.fetches_served(), 1U);

  // Unknown batches are not served (nothing to serve).
  const BatchId unknown = id_for(1, 9, bytes_of(4, 0x66));
  h.engine.on_message(1, std::make_shared<BatchFetchMsg>(unknown));
  EXPECT_EQ(h.count_sent(kBatchPush, /*to=*/1), 1U);
}

TEST(DisseminatorTest, CertsQueueDrainIntoProposalsAndGateVotes) {
  Harness h(/*self=*/2);
  const auto payload = bytes_of(64, 0x77);
  const BatchId id = id_for(0, 1, payload);
  const BatchCert cert = h.cert_for(id);

  h.engine.on_message(0, std::make_shared<BatchCertMsg>(cert));
  EXPECT_EQ(h.engine.certified_depth(), 1U);

  // Vote gate: empty and verified-refs payloads pass; raw bytes and
  // tampered certs do not.
  const std::vector<std::uint8_t> refs_payload = encode_refs({cert});
  EXPECT_TRUE(h.engine.refs_payload_ok({}));
  EXPECT_TRUE(h.engine.refs_payload_ok(
      std::span<const std::uint8_t>(refs_payload.data(), refs_payload.size())));
  const std::vector<std::uint8_t> raw = {9, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_FALSE(h.engine.refs_payload_ok(std::span<const std::uint8_t>(raw.data(), raw.size())));
  BatchId forged_id = id;
  forged_id.seq = 99;
  const std::vector<std::uint8_t> forged =
      encode_refs({BatchCert(forged_id, cert.sig())});  // sig binds another batch
  EXPECT_FALSE(
      h.engine.refs_payload_ok(std::span<const std::uint8_t>(forged.data(), forged.size())));

  // The queued cert drains into exactly one proposal payload.
  const std::vector<std::uint8_t> proposal = h.engine.make_proposal_payload(1);
  EXPECT_EQ(proposal, refs_payload);
  EXPECT_EQ(h.engine.certified_depth(), 0U);
  EXPECT_TRUE(h.engine.make_proposal_payload(2).empty());

  // The reinsert net: unordered after the timeout -> queued again;
  // ordered -> the timer is a no-op.
  h.fire_timers();
  EXPECT_EQ(h.engine.certified_depth(), 1U);
  EXPECT_EQ(h.engine.refs_reinserted(), 1U);
}

TEST(DisseminatorTest, SeeingARefProposedWithholdsItFromOwnProposals) {
  Harness h(/*self=*/2);
  const auto payload = bytes_of(32, 0x88);
  const BatchId id = id_for(1, 4, payload);
  const BatchCert cert = h.cert_for(id);
  h.engine.on_message(1, std::make_shared<BatchCertMsg>(cert));
  EXPECT_EQ(h.engine.certified_depth(), 1U);

  const std::vector<std::uint8_t> refs_payload = encode_refs({cert});
  h.engine.on_refs_proposed(
      std::span<const std::uint8_t>(refs_payload.data(), refs_payload.size()));
  EXPECT_EQ(h.engine.certified_depth(), 0U) << "a ref in flight is withheld";
  EXPECT_TRUE(h.engine.make_proposal_payload(3).empty());

  // An unknown cert in a (possibly Byzantine) proposal must not enter
  // the reinsert path unvetted.
  const BatchId foreign = id_for(3, 8, bytes_of(8, 0x99));
  const std::vector<std::uint8_t> foreign_payload = encode_refs({h.cert_for(foreign)});
  h.engine.on_refs_proposed(
      std::span<const std::uint8_t>(foreign_payload.data(), foreign_payload.size()));
  h.fire_timers();
  EXPECT_EQ(h.engine.certified_depth(), 1U) << "only the withheld ref reinserts";
}

TEST(DisseminatorTest, FetchOnMissResolvesAndDeliversExactlyOnce) {
  Harness h(/*self=*/2);
  const auto payload = bytes_of(48, 0xAA);
  const BatchId id = id_for(0, 1, payload);
  const BatchCert cert = h.cert_for(id);
  const std::vector<std::uint8_t> refs_payload = encode_refs({cert});

  // Committing a reference this node never stored: no delivery yet, one
  // fetch to every cert signer (at least one of the f+1 is honest).
  h.engine.on_committed_payload(
      std::span<const std::uint8_t>(refs_payload.data(), refs_payload.size()));
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.engine.unresolved_count(), 1U);
  EXPECT_EQ(h.count_sent(kBatchFetch, /*to=*/0), 1U);
  EXPECT_EQ(h.count_sent(kBatchFetch, /*to=*/1), 1U);

  // The fetch response is an ordinary push: it resolves the reference
  // and delivers the batch.
  h.engine.on_message(0, std::make_shared<BatchPushMsg>(id, payload));
  EXPECT_EQ(h.engine.unresolved_count(), 0U);
  ASSERT_EQ(h.delivered.size(), 1U);
  EXPECT_EQ(h.delivered.front(), payload);
  EXPECT_EQ(h.engine.batches_delivered(), 1U);

  // Re-committing the same reference (reinsert + pipelined chains make
  // this legal) must not deliver twice.
  h.engine.on_committed_payload(
      std::span<const std::uint8_t>(refs_payload.data(), refs_payload.size()));
  EXPECT_EQ(h.delivered.size(), 1U);
}

// ---- end to end under consensus ---------------------------------------

ScenarioBuilder dissem_cluster(std::uint64_t seed, std::size_t request_bytes) {
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kConstant;
  spec.clients_per_node = 1;
  spec.rate_per_client = 150.0;
  spec.request_bytes = request_bytes;
  spec.mempool.max_pending_count = 256;
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  builder.pacemaker("lumiere");
  builder.core("chained-hotstuff");
  builder.seed(seed);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.workload(spec);
  builder.dissemination();
  return builder;
}

/// Per-reference wire bytes of every committed refs payload in `cluster`
/// (all entries must be refs payloads or empty once dissemination is on).
std::set<std::size_t> committed_ref_sizes(const Cluster& cluster) {
  std::set<std::size_t> sizes;
  for (ProcessId id = 0; id < 4; ++id) {
    for (const auto& entry : cluster.node(id).ledger().entries()) {
      if (entry.payload.empty()) continue;
      const auto span =
          std::span<const std::uint8_t>(entry.payload.data(), entry.payload.size());
      EXPECT_TRUE(is_refs_payload(span)) << "a dissem-on proposal carried inline bytes";
      const auto refs = decode_refs(span);
      if (!refs) continue;
      // [magic][count] header is 8 bytes; the rest is count x one ref.
      sizes.insert((entry.payload.size() - 8) / refs->size());
    }
  }
  return sizes;
}

TEST(DissemClusterTest, CommitsDeliverExactlyOnceWithCertifiedBatches) {
  Cluster cluster(dissem_cluster(31, /*request_bytes=*/64));
  cluster.run_for(Duration::seconds(8));

  const workload::Report report = cluster.workload_report();
  EXPECT_GT(report.committed, 100U);
  EXPECT_EQ(report.commit_misses, 0U);
  EXPECT_EQ(report.committed + report.outstanding, report.admitted)
      << "every admitted request committed or is still in flight — never lost";

  const runtime::MetricsCollector& metrics = cluster.metrics();
  EXPECT_GT(metrics.batches_certified(), 0U);
  EXPECT_GT(metrics.batch_acks(), 0U);
  EXPECT_GT(metrics.dissem_bytes(), 0U);
  EXPECT_TRUE(metrics.batch_cert_latency_percentile(0.5).has_value());
  EXPECT_FALSE(metrics.certified_depth_log().empty());

  for (ProcessId id = 0; id < 4; ++id) {
    const Disseminator* engine = cluster.node(id).disseminator();
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->unresolved_count(), 0U)
        << "node " << id << " ended with committed references it never resolved";
    EXPECT_GT(engine->batches_delivered(), 0U);
  }
}

TEST(DissemClusterTest, ProposalWireSizeIndependentOfBatchPayloadSize) {
  // Two identical clusters except for the request size (64B vs 2KiB):
  // committed proposals must spend identical wire bytes per reference —
  // the payload bytes ride BatchPush, never the proposal.
  Cluster small(dissem_cluster(32, /*request_bytes=*/64));
  small.run_for(Duration::seconds(6));
  Cluster large(dissem_cluster(32, /*request_bytes=*/2048));
  large.run_for(Duration::seconds(6));

  const std::set<std::size_t> small_sizes = committed_ref_sizes(small);
  const std::set<std::size_t> large_sizes = committed_ref_sizes(large);
  ASSERT_FALSE(small_sizes.empty());
  ASSERT_FALSE(large_sizes.empty());
  EXPECT_EQ(small_sizes, large_sizes);

  // And the constant matches the encoding: one serialized f+1 cert.
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 23);
  const crypto::Authenticator& auth = *auth_owner;
  const ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  const BatchId id = id_for(0, 1, bytes_of(8, 0x01));
  ser::Writer w;
  BatchCert(id, aggregate_for(auth, id, params.small_quorum())).serialize(w);
  EXPECT_EQ(*small_sizes.begin(), w.size());
  EXPECT_EQ(small_sizes.size(), 1U) << "references are fixed-size";
}

TEST(DissemClusterTest, BacklogRidesAQuorumPreservingPartition) {
  // {0,1,2} keeps the 2f+1 = 3 quorum, node 3 is cut off for two
  // seconds. Batches certified by the majority keep committing; node 3
  // resolves everything it committed by the end (push replay or fetch).
  ScenarioBuilder builder = dissem_cluster(33, /*request_bytes=*/64);
  builder.partition({{0, 1, 2}, {3}}, TimePoint(Duration::seconds(2).ticks()));
  builder.heal(TimePoint(Duration::seconds(4).ticks()));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(9));

  EXPECT_GT(cluster.metrics().requests_between(
                TimePoint(Duration::seconds(2).ticks()) + Duration::millis(10),
                TimePoint(Duration::seconds(4).ticks())),
            0U)
      << "the majority side must keep committing requests through the cut";
  const workload::Report report = cluster.workload_report();
  EXPECT_EQ(report.commit_misses, 0U);
  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_NE(cluster.node(id).disseminator(), nullptr);
    EXPECT_EQ(cluster.node(id).disseminator()->unresolved_count(), 0U) << "node " << id;
  }
}

}  // namespace
}  // namespace lumiere::dissem
