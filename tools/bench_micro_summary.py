#!/usr/bin/env python3
"""Before/after table for the hot-path micro benchmarks.

Reads a google-benchmark JSON report (BENCH_micro.json) and the checked-in
pre-overhaul baseline (bench/BASELINE_micro.json), and prints a GitHub-
flavored markdown table of the tracked benchmarks with speedup factors.
CI appends the output to $GITHUB_STEP_SUMMARY; locally it just prints.

Usage: tools/bench_micro_summary.py BENCH_micro.json [bench/BASELINE_micro.json]
"""

import json
import sys

TRACKED_PREFIXES = ("BM_EventQueueScheduleAndPop", "BM_NetworkBroadcast")


def to_ns(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return entry["real_time"] * scale


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    report_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "bench/BASELINE_micro.json"

    with open(report_path) as f:
        report = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    base_by_name = {row["name"]: row["real_time_ns"] for row in baseline["benchmarks"]}
    rows = []
    for entry in report.get("benchmarks", []):
        name = entry["name"]
        if not name.startswith(TRACKED_PREFIXES) or entry.get("run_type") == "aggregate":
            continue
        now_ns = to_ns(entry)
        base_ns = base_by_name.get(name)
        speedup = f"{base_ns / now_ns:.2f}x" if base_ns else "n/a"
        base_cell = f"{base_ns:,.0f}" if base_ns else "n/a"
        rows.append((name, base_cell, f"{now_ns:,.0f}", speedup))

    if not rows:
        sys.exit(f"no tracked benchmarks found in {report_path}")

    print("### Hot-path micro benchmarks (vs pre-overhaul baseline)")
    print()
    print("| benchmark | baseline ns | this run ns | speedup |")
    print("|---|---:|---:|---:|")
    for name, base_cell, now_cell, speedup in rows:
        print(f"| `{name}` | {base_cell} | {now_cell} | {speedup} |")


if __name__ == "__main__":
    main()
