// fuzz_repro: replay one scenario-fuzz case byte-identically from its
// seed (plus optional shrink deltas), print the sampled scenario, the
// oracle verdicts and the run digest.
//
//   fuzz_repro --seed N                      replay the full sampled case
//   fuzz_repro --seed N --drop-events 1,3
//              --drop-behaviors 0 --n 4      replay a shrunken case
//   fuzz_repro --seed N --shrink             shrink a failing seed and
//                                            print the minimal repro line
//
// Exit code 0 = every oracle passed, 1 = a violation (printed), 2 = bad
// usage. The digest is SHA-256 over the structured trace, every ledger
// and the message totals: two invocations printing the same digest
// executed the same run, event for event.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/engine.h"

namespace {

using lumiere::fuzz::CaseDeltas;
using lumiere::fuzz::FuzzCase;
using lumiere::fuzz::RunResult;

std::vector<std::size_t> parse_index_list(const std::string& arg) {
  std::vector<std::size_t> out;
  std::istringstream in(arg);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(std::stoull(token));
  }
  return out;
}

int usage() {
  std::cerr << "usage: fuzz_repro --seed N [--drop-events i,j] [--drop-behaviors k]\n"
               "                  [--n M] [--no-workload] [--no-dissem] [--no-sync] [--shrink]\n"
               "                  [--transport=sim|tcp] [--tcp-base-port P]\n"
               "  --transport=tcp replays the case on real localhost sockets\n"
               "  (sim-only delay/topology elements stripped; the digest is not\n"
               "  comparable with the sim run — the oracle verdict is)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  bool have_seed = false;
  bool do_shrink = false;
  bool tcp = false;
  std::uint16_t tcp_base_port = 23500;
  CaseDeltas deltas;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
      have_seed = true;
    } else if (arg == "--drop-events") {
      deltas.drop_events = parse_index_list(next());
    } else if (arg == "--drop-behaviors") {
      deltas.drop_behaviors = parse_index_list(next());
    } else if (arg == "--n") {
      deltas.n = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--no-workload") {
      deltas.drop_workload = true;
    } else if (arg == "--no-dissem") {
      deltas.drop_dissem = true;
    } else if (arg == "--no-sync") {
      deltas.drop_block_sync = true;
    } else if (arg == "--shrink") {
      do_shrink = true;
    } else if (arg == "--transport=tcp" || arg == "--transport-tcp") {
      tcp = true;
    } else if (arg == "--transport=sim") {
      tcp = false;
    } else if (arg == "--transport") {
      const std::string value = next();
      if (value == "tcp") {
        tcp = true;
      } else if (value == "sim") {
        tcp = false;
      } else {
        std::cerr << "unknown transport: " << value << "\n";
        return usage();
      }
    } else if (arg == "--tcp-base-port") {
      tcp_base_port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage();
    }
  }
  if (!have_seed) return usage();

  const FuzzCase base = lumiere::fuzz::sample_case(seed);
  const FuzzCase replayed = deltas.empty() ? base : lumiere::fuzz::apply_deltas(base, deltas);
  std::cout << "case:   " << lumiere::fuzz::describe(replayed) << "\n";
  std::cout << "dissem: " << (replayed.dissem ? "enabled" : "disabled")
            << " (data-dissemination layer; --no-dissem is a shrink dimension)\n";
  std::cout << "sync:   " << (replayed.block_sync ? "enabled" : "disabled")
            << " (block-sync subsystem; --no-sync is a shrink dimension)\n";

  const RunResult result = tcp ? lumiere::fuzz::run_case_tcp(replayed, tcp_base_port)
                               : lumiere::fuzz::run_case(replayed);
  if (tcp) std::cout << "transport: tcp (base port " << tcp_base_port << ")\n";
  std::cout << "digest: " << result.digest.hex() << "\n";
  if (result.ok()) {
    std::cout << "result: every oracle passed\n";
    return 0;
  }
  for (const std::string& violation : result.violations) {
    std::cout << "FAIL:   " << violation << "\n";
  }

  if (do_shrink) {
    const auto shrunk = lumiere::fuzz::shrink(
        seed, [](const FuzzCase& candidate) { return !lumiere::fuzz::run_case(candidate).ok(); });
    std::cout << "shrunk (" << shrunk.attempts
              << " candidate runs): " << lumiere::fuzz::describe(shrunk.minimal) << "\n";
    std::cout << "repro:  " << lumiere::fuzz::repro_line(seed, shrunk.deltas) << "\n";
  } else {
    std::cout << "repro:  " << lumiere::fuzz::repro_line(seed, deltas)
              << "   (add --shrink to minimize)\n";
  }
  return 1;
}
