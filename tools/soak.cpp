// soak: multi-process robustness orchestrator.
//
// Spawns an n-process TCP cluster (one tools/lumiere_node per replica),
// then runs a scripted disruption schedule against the live processes
// through their status/admin endpoints:
//
//   t=0.15D  runtime link degradation  (DROP/DELAY on one replica)
//   t=0.25D  kill -9 one replica       (real crash: all state lost)
//   t=0.45D  restart it                (rejoin + checkpoint adoption)
//   t=0.55D  BEHAVIOR equivocator flip (live adversary, within f)
//   t=0.70D  HEAL the degraded links   (last disruption)
//   t=D      download every ledger, run the data-form oracles
//
// The verdict — safety over the downloaded ledgers, per-node view
// monotonicity, exactly-once, liveness after the last disruption, and
// the restarted replica provably committing new entries after rejoin —
// is written as JSON (--out) and summarized on stdout. Exit 0 = every
// check passed, 1 = a violation, 2 = usage/setup failure.
//
// Per-node logs, the shared spec file and the raw ledger dumps land in
// --work-dir (default ./soak-out) for post-mortems and CI artifacts.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/ledger_oracles.h"
#include "runtime/spec_io.h"

namespace {

using lumiere::ProcessId;
using lumiere::View;
using lumiere::fuzz::NodeLedgerData;
using lumiere::runtime::ClusterSpec;
using lumiere::runtime::LedgerRecord;

constexpr const char* kAdminToken = "soak";

// ---------------------------------------------------------------- status
// Minimal line-protocol client for the status/admin endpoint. Every
// helper opens a fresh connection: sessions are cheap, and a replica
// that died mid-conversation must not wedge the orchestrator.

int connect_to(std::uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until a line satisfying `terminal` arrives (inclusive), or the
/// deadline/peer-close. Returns everything read.
std::optional<std::string> read_reply(int fd, bool multi_line, int timeout_ms) {
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  char chunk[2048];
  while (true) {
    // A single-line reply is complete at its first newline; a multi-line
    // reply (STATUS, LEDGER) at its "END" line. ERR replies are always
    // one line, even for multi-line commands.
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      if (!multi_line || buffer.rfind("ERR", 0) == 0) return buffer.substr(0, newline);
      if (buffer.find("\nEND\n") != std::string::npos || buffer.rfind("END\n", 0) == 0) {
        return buffer;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(left, 100)));
    if (ready < 0) return std::nullopt;
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return std::nullopt;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// One authenticated admin command; nullopt when the endpoint is
/// unreachable or times out.
std::optional<std::string> admin(std::uint16_t port, const std::string& command, bool multi_line,
                                 int timeout_ms = 5000) {
  const int fd = connect_to(port, timeout_ms);
  if (fd < 0) return std::nullopt;
  std::optional<std::string> reply;
  if (send_line(fd, std::string("AUTH ") + kAdminToken)) {
    const auto auth_reply = read_reply(fd, /*multi_line=*/false, timeout_ms);
    if (auth_reply.has_value() && auth_reply->rfind("OK", 0) == 0 && send_line(fd, command)) {
      reply = read_reply(fd, multi_line, timeout_ms);
    }
  }
  ::close(fd);
  return reply;
}

/// Parsed STATUS snapshot (key-value lines until END).
std::optional<std::map<std::string, std::string>> query_status(std::uint16_t port,
                                                               int timeout_ms = 3000) {
  const int fd = connect_to(port, timeout_ms);
  if (fd < 0) return std::nullopt;
  std::optional<std::map<std::string, std::string>> result;
  if (send_line(fd, "STATUS")) {
    const auto reply = read_reply(fd, /*multi_line=*/true, timeout_ms);
    if (reply.has_value()) {
      std::map<std::string, std::string> fields;
      std::istringstream in(*reply);
      std::string line;
      while (std::getline(in, line)) {
        if (line == "END") break;
        const std::size_t space = line.find(' ');
        if (space != std::string::npos) fields[line.substr(0, space)] = line.substr(space + 1);
      }
      result = std::move(fields);
    }
  }
  ::close(fd);
  return result;
}

std::uint64_t field_u64(const std::map<std::string, std::string>& fields, const char* key) {
  const auto it = fields.find(key);
  return it == fields.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

// --------------------------------------------------------------- process

struct Replica {
  ProcessId id = lumiere::kNoProcess;
  pid_t pid = -1;
  std::uint16_t status_port = 0;
  bool restarted = false;
  bool flipped_byzantine = false;
};

pid_t spawn_node(const std::string& node_bin, const std::string& spec_path, ProcessId id,
                 const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: logs to its own file, then exec.
  const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
  }
  const std::string id_arg = std::to_string(id);
  const char* argv[] = {node_bin.c_str(), "--spec", spec_path.c_str(),
                        "--id",           id_arg.c_str(), "--allow-crash", nullptr};
  ::execv(node_bin.c_str(), const_cast<char* const*>(argv));
  std::perror("soak: execv");
  ::_exit(127);
}

// ----------------------------------------------------------------- misc

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: soak [--n N] [--duration-s S] [--seed K] [--core NAME] [--pacemaker NAME]\n"
         "            [--node-bin PATH] [--tcp-base-port P] [--status-base-port P]\n"
         "            [--work-dir DIR] [--out verdict.json] [--pipeline]\n"
         "            [--second-equivocation]\n"
         "  Scripted disruption schedule: DROP/DELAY shaping, kill -9 + restart,\n"
         "  live BEHAVIOR equivocator flip, HEAL — then ledger download + oracles.\n"
         "  --second-equivocation repents node 2 and re-flips it, so the cluster\n"
         "  weathers two equivocation rounds (block sync must empty \"stalled\").\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 5;
  long long duration_s = 45;
  std::uint64_t seed = 1;
  std::string core = "chained-hotstuff";
  std::string pacemaker = "lumiere";
  std::string node_bin;
  std::uint16_t tcp_base_port = 28100;
  std::uint16_t status_base_port = 28200;
  std::string work_dir = "soak-out";
  std::string out_path;
  bool pipeline = false;
  bool second_equivocation = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--n") {
      n = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--duration-s") {
      duration_s = std::strtoll(next(), nullptr, 0);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--core") {
      core = next();
    } else if (arg == "--pacemaker") {
      pacemaker = next();
    } else if (arg == "--node-bin") {
      node_bin = next();
    } else if (arg == "--tcp-base-port") {
      tcp_base_port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--status-base-port") {
      status_base_port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--work-dir") {
      work_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (arg == "--second-equivocation") {
      second_equivocation = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage();
    }
  }
  if (n < 4 || duration_s < 10) {
    std::cerr << "soak: need --n >= 4 (disruption script uses nodes 1..3) and "
                 "--duration-s >= 10\n";
    return 2;
  }
  if (node_bin.empty()) {
    // Sibling of this binary by default.
    const std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    node_bin = (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
               "/lumiere_node";
  }
  ::mkdir(work_dir.c_str(), 0755);

  // ---- shared spec -------------------------------------------------
  ClusterSpec spec;
  spec.n = n;
  spec.core = core;
  spec.pacemaker = pacemaker;
  spec.seed = seed;
  spec.tcp_base_port = tcp_base_port;
  spec.status_base_port = status_base_port;
  spec.admin_token = kAdminToken;
  spec.pipeline = pipeline;
  // Block sync on: equivocation victims and the restarted replica must
  // backfill their ancestry gaps and keep committing, so the stalled
  // list below is held to empty rather than merely reported.
  spec.block_sync = true;
  const std::string spec_path = work_dir + "/cluster.spec";
  {
    std::ofstream out(spec_path);
    if (!out) {
      std::cerr << "soak: cannot write " << spec_path << "\n";
      return 2;
    }
    out << lumiere::runtime::serialize(spec);
  }

  std::vector<std::string> violations;
  const auto violation = [&violations](std::string what) {
    std::cerr << "soak: VIOLATION: " << what << "\n";
    violations.push_back(std::move(what));
  };

  // ---- spawn -------------------------------------------------------
  std::vector<Replica> replicas(n);
  const auto log_path = [&](ProcessId id) {
    return work_dir + "/node" + std::to_string(id) + ".log";
  };
  for (ProcessId id = 0; id < n; ++id) {
    replicas[id].id = id;
    replicas[id].status_port = static_cast<std::uint16_t>(status_base_port + id);
    replicas[id].pid = spawn_node(node_bin, spec_path, id, log_path(id));
    if (replicas[id].pid < 0) {
      std::cerr << "soak: fork failed\n";
      return 2;
    }
  }
  const auto kill_all = [&replicas] {
    for (Replica& replica : replicas) {
      if (replica.pid > 0) ::kill(replica.pid, SIGTERM);
    }
    for (Replica& replica : replicas) {
      if (replica.pid > 0) ::waitpid(replica.pid, nullptr, 0);
      replica.pid = -1;
    }
  };
  for (const Replica& replica : replicas) {
    if (!query_status(replica.status_port, 15'000).has_value()) {
      std::cerr << "soak: node " << replica.id << " status endpoint never came up (see "
                << log_path(replica.id) << ")\n";
      kill_all();
      return 2;
    }
  }
  std::cout << "soak: " << n << " replicas up (tcp " << tcp_base_port << "+, status "
            << status_base_port << "+), duration " << duration_s << "s\n";

  // ---- scripted schedule -------------------------------------------
  const auto start = std::chrono::steady_clock::now();
  const auto at_fraction = [&](double f) {
    return start + std::chrono::milliseconds(static_cast<long long>(duration_s * 1000 * f));
  };
  const auto sleep_until = [&](std::chrono::steady_clock::time_point t) {
    std::this_thread::sleep_until(t);
  };
  // Unexpected deaths checked at every step; only our own kill -9 of
  // node 1 is sanctioned (and CRASH would be, were the script to use it).
  const auto check_children = [&](ProcessId sanctioned) {
    for (Replica& replica : replicas) {
      if (replica.pid <= 0 || replica.id == sanctioned) continue;
      int status = 0;
      if (::waitpid(replica.pid, &status, WNOHANG) == replica.pid) {
        std::ostringstream out;
        out << "node " << replica.id << " died unexpectedly (status " << status << ")";
        violation(out.str());
        replica.pid = -1;
      }
    }
  };

  const ProcessId kill_target = 1;
  const ProcessId flip_target = 2;
  const ProcessId shape_target = 3;

  sleep_until(at_fraction(0.15));
  check_children(lumiere::kNoProcess);
  if (!admin(replicas[shape_target].status_port, "DROP 0 0.25", false).has_value() ||
      !admin(replicas[shape_target].status_port, "DELAY 4 5", false).has_value()) {
    violation("runtime DROP/DELAY shaping command failed on node 3");
  }
  std::cout << "soak: [0.15] node 3 links degraded (DROP 0 0.25, DELAY 4 5ms)\n";

  sleep_until(at_fraction(0.25));
  check_children(lumiere::kNoProcess);
  ::kill(replicas[kill_target].pid, SIGKILL);
  ::waitpid(replicas[kill_target].pid, nullptr, 0);
  replicas[kill_target].pid = -1;
  std::cout << "soak: [0.25] node 1 killed (SIGKILL)\n";

  sleep_until(at_fraction(0.45));
  check_children(kill_target);
  // The progress watermark the restarted replica must commit beyond:
  // the cluster's best commit height at restart time.
  std::uint64_t watermark = 0;
  for (const Replica& replica : replicas) {
    if (replica.pid <= 0) continue;
    const auto status = query_status(replica.status_port);
    if (status.has_value()) {
      watermark = std::max(watermark, field_u64(*status, "last_commit_height"));
    }
  }
  replicas[kill_target].pid = spawn_node(node_bin, spec_path, kill_target, log_path(kill_target));
  replicas[kill_target].restarted = true;
  std::cout << "soak: [0.45] node 1 restarted (watermark view " << watermark << ")\n";

  sleep_until(at_fraction(0.55));
  check_children(lumiere::kNoProcess);
  const auto flip_reply = admin(replicas[flip_target].status_port, "BEHAVIOR equivocator", false);
  if (!flip_reply.has_value() || flip_reply->rfind("OK", 0) != 0) {
    violation("BEHAVIOR equivocator flip on node 2 failed: " + flip_reply.value_or("(timeout)"));
  } else {
    replicas[flip_target].flipped_byzantine = true;
  }
  std::cout << "soak: [0.55] node 2 flipped to equivocator\n";

  if (second_equivocation) {
    // A second round from the SAME node (the ever-faulty budget at n=5 is
    // f=1): repent, then flip again. Each round can wedge fresh victims
    // on the losing variant; block sync must un-wedge all of them.
    sleep_until(at_fraction(0.60));
    check_children(lumiere::kNoProcess);
    if (!admin(replicas[flip_target].status_port, "BEHAVIOR honest", false).has_value()) {
      violation("BEHAVIOR honest repentance on node 2 failed");
    }
    std::cout << "soak: [0.60] node 2 repented (honest)\n";
    sleep_until(at_fraction(0.65));
    check_children(lumiere::kNoProcess);
    if (!admin(replicas[flip_target].status_port, "BEHAVIOR equivocator", false).has_value()) {
      violation("second BEHAVIOR equivocator flip on node 2 failed");
    }
    std::cout << "soak: [0.65] node 2 flipped to equivocator again (round two)\n";
  }

  sleep_until(at_fraction(0.70));
  check_children(lumiere::kNoProcess);
  if (!admin(replicas[shape_target].status_port, "HEAL", false).has_value()) {
    violation("HEAL on node 3 failed");
  }
  std::cout << "soak: [0.70] node 3 healed — last disruption over\n";

  // ---- liveness after the last disruption --------------------------
  sleep_until(at_fraction(0.75));
  check_children(lumiere::kNoProcess);
  std::map<ProcessId, std::uint64_t> baseline;
  for (const Replica& replica : replicas) {
    if (replica.flipped_byzantine) continue;
    const auto status = query_status(replica.status_port);
    if (status.has_value()) baseline[replica.id] = field_u64(*status, "last_commit_height");
  }

  sleep_until(at_fraction(1.0));
  check_children(lumiere::kNoProcess);
  // Commit liveness. SOME honest ledger growing after the last disruption
  // is the hard cluster-wide bar (PR 5 oracle semantics). Per node, the
  // block-sync subsystem (src/sync/) means an equivocation victim's
  // ancestry gap is no longer permanent — it must fetch the winning
  // variant and catch back up. A node is "stalled" only when it BOTH
  // committed nothing since the baseline snapshot AND fell more than a
  // grace window behind its best honest peer: a node that is merely
  // behind at snapshot time tracks its peers, a wedged one flatlines
  // while they pull away. The restarted replica is additionally held to
  // the strict bar: it must commit beyond the cluster's height at its
  // restart.
  constexpr std::uint64_t kStallGraceViews = 8;
  std::size_t honest_checked = 0;
  std::size_t honest_progressed = 0;
  std::vector<ProcessId> stalled;
  std::map<ProcessId, std::uint64_t> final_height;
  for (const Replica& replica : replicas) {
    if (replica.flipped_byzantine) continue;
    const auto status = query_status(replica.status_port);
    if (!status.has_value()) {
      violation("node " + std::to_string(replica.id) + " status endpoint unreachable at end");
      continue;
    }
    const std::uint64_t now_height = field_u64(*status, "last_commit_height");
    final_height[replica.id] = now_height;
    if (replica.restarted && now_height <= watermark) {
      std::ostringstream out;
      out << "recovery: restarted node " << replica.id << " never committed beyond the "
          << "restart watermark (view " << now_height << " <= " << watermark << ")";
      violation(out.str());
    }
  }
  std::uint64_t best_honest_height = 0;
  for (const auto& [id, height] : final_height) {
    best_honest_height = std::max(best_honest_height, height);
  }
  for (const auto& [id, now_height] : final_height) {
    const auto it = baseline.find(id);
    if (it == baseline.end()) continue;
    ++honest_checked;
    if (now_height > it->second) {
      ++honest_progressed;
      continue;
    }
    if (now_height + kStallGraceViews >= best_honest_height) {
      std::cout << "soak: note: node " << id << " committed nothing since the baseline but "
                << "is within " << kStallGraceViews << " views of its best peer ("
                << now_height << " vs " << best_honest_height << ") — behind, not wedged\n";
      continue;
    }
    stalled.push_back(id);
    std::cout << "soak: note: node " << id << " is wedged: no commit since the baseline (view "
              << it->second << " -> " << now_height << ") and " << best_honest_height - now_height
              << " views behind its best peer — block sync failed to un-wedge it\n";
  }
  if (honest_checked > 0 && honest_progressed == 0) {
    violation("liveness: no honest node committed anything after the last disruption");
  }
  if (!stalled.empty()) {
    std::ostringstream out;
    out << "block sync: " << stalled.size() << " honest node(s) wedged on a missing ancestor "
        << "despite block sync (see \"stalled\" in the verdict)";
    violation(out.str());
  }

  // ---- ledger download + data-form oracles -------------------------
  std::vector<NodeLedgerData> dumps;
  for (const Replica& replica : replicas) {
    const auto reply = admin(replica.status_port, "LEDGER", /*multi_line=*/true, 10'000);
    if (!reply.has_value() || reply->rfind("ERR", 0) == 0) {
      violation("LEDGER download from node " + std::to_string(replica.id) + " failed: " +
                reply.value_or("(timeout)"));
      continue;
    }
    std::ofstream raw(work_dir + "/node" + std::to_string(replica.id) + ".ledger");
    raw << *reply;
    std::string error;
    const auto records = lumiere::runtime::parse_ledger(*reply, error);
    if (!records.has_value()) {
      violation("ledger dump from node " + std::to_string(replica.id) + " malformed: " + error);
      continue;
    }
    NodeLedgerData data;
    data.node = replica.id;
    data.restarted = replica.restarted;
    const auto status = query_status(replica.status_port);
    data.ever_byzantine = replica.flipped_byzantine ||
                          (status.has_value() && field_u64(*status, "ever_byzantine") != 0);
    data.records = std::move(*records);
    dumps.push_back(std::move(data));
  }

  const auto add = [&](std::optional<std::string> v) {
    if (v.has_value()) violation(std::move(*v));
  };
  add(lumiere::fuzz::check_safety_data(dumps));
  add(lumiere::fuzz::check_view_monotonicity_data(dumps));
  add(lumiere::fuzz::check_exactly_once_data(dumps));
  add(lumiere::fuzz::check_commit_progress_data(dumps, kill_target,
                                                static_cast<View>(watermark)));

  kill_all();

  // ---- verdict -----------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"ok\": " << (violations.empty() ? "true" : "false") << ",\n  \"n\": " << n
       << ",\n  \"seed\": " << seed << ",\n  \"core\": \"" << core << "\",\n  \"duration_s\": "
       << duration_s << ",\n  \"restart_watermark\": " << watermark << ",\n  \"stalled\": [";
  for (std::size_t i = 0; i < stalled.size(); ++i) json << (i == 0 ? "" : ", ") << stalled[i];
  json << "],\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    json << (i == 0 ? "" : ",") << "\n    \"" << json_escape(violations[i]) << "\"";
  }
  json << (violations.empty() ? "" : "\n  ") << "],\n  \"nodes\": [";
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    const NodeLedgerData& d = dumps[i];
    json << (i == 0 ? "" : ",") << "\n    {\"id\": " << d.node << ", \"entries\": "
         << d.records.size() << ", \"newest_view\": "
         << (d.records.empty() ? View{-1} : d.records.back().view)
         << ", \"ever_byzantine\": " << (d.ever_byzantine ? "true" : "false")
         << ", \"restarted\": " << (d.restarted ? "true" : "false") << "}";
  }
  json << (dumps.empty() ? "" : "\n  ") << "]\n}\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
  }
  std::cout << json.str();
  std::cout << (violations.empty() ? "soak: PASS\n" : "soak: FAIL\n");
  return violations.empty() ? 0 : 1;
}
