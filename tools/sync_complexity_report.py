#!/usr/bin/env python3
"""Per-pacemaker view-sync cost tables from bench_sync_complexity.

Reads BENCH_sync_complexity.json (the --json artifact) and prints one
GitHub-flavored markdown table per pacemaker — mean per-sync messages,
bytes and authenticator ops against n, next to the O(n)/O(n^2) curves
anchored at the smallest n — plus the fitted growth exponent (the
log-log slope; 1.0 = linear, 2.0 = quadratic, the Lewis-Pye bound's
anchor). CI appends the output to $GITHUB_STEP_SUMMARY; locally it just
prints.

Usage: tools/sync_complexity_report.py [BENCH_sync_complexity.json]
"""

import json
import sys


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sync_complexity.json"
    with open(path) as f:
        report = json.load(f)
    if report.get("bench") != "sync_complexity":
        sys.exit(f"{path}: not a bench_sync_complexity artifact")

    samples = {}  # protocol -> [row, ...] in file order
    fits = {}  # protocol -> fit row
    for row in report.get("rows", []):
        if row.get("kind") == "sample":
            samples.setdefault(row["protocol"], []).append(row)
        elif row.get("kind") == "fit":
            fits[row["protocol"]] = row

    if not samples:
        sys.exit(f"no sample rows found in {path}")

    print("### View-sync cost vs n (per pacemaker)")
    print()
    print("Mean per-sync cost over honest nodes' completed sync spans, under")
    print("f silent leaders and the worst permitted network. `~O(n)` and")
    print("`~O(n^2)` are theory curves anchored at the smallest n; the fitted")
    print("exponent is the log-log slope (1.0 = linear, 2.0 = quadratic).")
    for protocol, rows in samples.items():
        print()
        fit = fits.get(protocol, {})
        exponent = fit.get("msgs_exponent")
        auth_exponent = fit.get("auth_exponent")
        headline = f"#### `{protocol}`"
        if exponent is not None:
            headline += f" — msgs/sync ~ n^{exponent:.2f}"
        if auth_exponent is not None:
            headline += f", auth-ops/sync ~ n^{auth_exponent:.2f}"
        print(headline)
        print()
        print("| n | f | spans | msgs/sync | ~O(n) | ~O(n^2) | bytes/sync | auth/sync |")
        print("|---:|---:|---:|---:|---:|---:|---:|---:|")
        for row in rows:
            print(
                f"| {row['n']} | {row['f']} | {row['spans']} "
                f"| {row['msgs_mean']:.1f} | {row['theory_n']:.1f} "
                f"| {row['theory_n2']:.1f} | {row['bytes_mean']:.1f} "
                f"| {row['auth_mean']:.1f} |"
            )


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
