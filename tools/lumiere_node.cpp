// lumiere_node: one replica process of a multi-process TCP cluster.
//
//   lumiere_node --spec cluster.spec --id 2 [--allow-crash] [--run-ms N]
//
// Reads the shared ClusterSpec (runtime/spec_io.h), builds exactly ONE
// node's stack (runtime/solo_node.h) and drives it until SIGTERM/SIGINT
// (or --run-ms elapses). The soak orchestrator (tools/soak) spawns n of
// these, then kills, restarts and reshapes them through their status
// endpoints while the cluster keeps committing.
//
// Exit codes: 0 clean stop, 2 usage/spec error, 137 admin CRASH.

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "runtime/solo_node.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --spec <file> --id <node> [--allow-crash] [--run-ms <n>]\n"
               "  --spec        cluster spec file (runtime/spec_io.h format)\n"
               "  --id          which node of the spec this process hosts\n"
               "  --allow-crash admin CRASH performs _exit(137) (soak clusters)\n"
               "  --run-ms      stop after n wall milliseconds (default: until "
               "SIGTERM)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  lumiere::ProcessId id = lumiere::kNoProcess;
  bool allow_crash = false;
  long long run_ms = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--id" && i + 1 < argc) {
      id = static_cast<lumiere::ProcessId>(std::stoul(argv[++i]));
    } else if (arg == "--allow-crash") {
      allow_crash = true;
    } else if (arg == "--run-ms" && i + 1 < argc) {
      run_ms = std::stoll(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty() || id == lumiere::kNoProcess) return usage(argv[0]);

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "lumiere_node: cannot read spec file '" << spec_path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto spec = lumiere::runtime::parse_cluster_spec(text.str(), error);
  if (!spec.has_value()) {
    std::cerr << "lumiere_node: " << error << "\n";
    return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    lumiere::runtime::SoloNodeRuntime::Options options;
    options.allow_crash = allow_crash;
    lumiere::runtime::SoloNodeRuntime runtime(*spec, id, options);
    std::cout << "lumiere_node: node " << id << " up, transport port "
              << (spec->tcp_base_port + id) << ", status port "
              << (runtime.status_port() != 0 ? runtime.status_port() : 0) << std::endl;
    // Short slices so a SIGTERM lands within ~50ms; the driver keeps the
    // sim/wall anchor continuous across calls.
    const auto slice = std::chrono::milliseconds(50);
    long long elapsed_ms = 0;
    while (!g_stop.load(std::memory_order_relaxed) && (run_ms < 0 || elapsed_ms < run_ms)) {
      runtime.run_for(slice);
      elapsed_ms += slice.count();
    }
    const lumiere::obs::NodeStatus status = runtime.status();
    std::cout << "lumiere_node: node " << id << " stopping at view " << status.view
              << ", height " << status.height << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "lumiere_node: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
