// Quickstart: spin up a 4-processor cluster running chained HotStuff
// under the Lumiere pacemaker, submit commands, watch them commit.
//
//   cmake --build build && ./build/examples/quickstart
//
// This is the 60-second tour of the public API:
//   ScenarioBuilder -> Cluster -> run -> inspect ledgers & metrics.
#include <cstdio>

#include "runtime/cluster.h"
#include "runtime/experiment.h"

using namespace lumiere;

int main() {
  // 1. Configure: n = 3f+1 = 4 processors, known delay bound Delta = 10ms,
  //    actual network delay 1ms (partial synchrony: the protocol only
  //    knows Delta; responsiveness means it runs at the 1ms speed).
  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)))
      .seed(2024);

  // 2. Build and run for 10 simulated seconds.
  runtime::Cluster cluster(builder);
  cluster.run_for(Duration::seconds(10));

  // 3. Inspect: every honest node committed the same chain.
  std::printf("quickstart: %u nodes, Lumiere + chained HotStuff, 10s simulated\n",
              cluster.n());
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    const auto& ledger = cluster.node(id).ledger();
    std::printf("  node %u: view %lld, %zu blocks committed\n", id,
                static_cast<long long>(cluster.node(id).current_view()), ledger.size());
  }
  const auto& reference = cluster.node(0).ledger();
  bool consistent = true;
  for (ProcessId id = 1; id < cluster.n(); ++id) {
    consistent = consistent && cluster.node(id).ledger().prefix_consistent_with(reference);
  }
  std::printf("  ledgers prefix-consistent: %s\n", consistent ? "yes" : "NO (bug!)");

  // 4. The view-synchronization layer's cost, as the paper accounts it.
  const auto& metrics = cluster.metrics();
  std::printf("  honest messages: %llu total (%llu pacemaker, %llu consensus)\n",
              static_cast<unsigned long long>(metrics.total_honest_msgs()),
              static_cast<unsigned long long>(metrics.pacemaker_msgs()),
              static_cast<unsigned long long>(metrics.consensus_msgs()));
  std::printf("  decisions (honest-leader QCs): %zu\n", metrics.decisions().size());
  if (const auto gap = metrics.max_decision_gap(TimePoint::origin(), /*warmup=*/10)) {
    std::printf("  worst steady-state decision gap: %.1f ms (network delay is 1 ms)\n",
                static_cast<double>(gap->ticks()) / 1000.0);
  }
  std::printf("\nNext: examples/byzantine_storm and examples/wan_replication, then\n"
              "bench/bench_table1 and bench/bench_fig1 for the paper's artifacts.\n");
  return 0;
}
