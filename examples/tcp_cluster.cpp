// Real sockets: four in-process endpoints exchanging actual framed bytes
// over localhost TCP, running one round of the view-synchronization
// message flow (view messages -> VC -> proposal -> votes -> QC). Shows
// the protocol messages are wire-complete and the stack is not
// simulator-bound.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/certificates.h"
#include "pacemaker/messages.h"
#include "transport/tcp_transport.h"

using namespace lumiere;

int main() {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint16_t kBasePort = 24240;
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, kN, 42);
  const crypto::Authenticator& auth = *auth_owner;
  const crypto::AuthView auth_view(&auth);
  const ProtocolParams params = ProtocolParams::for_n(kN, Duration::millis(10));

  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);

  // Leader state for processor 0 (the leader of view 0 in this demo).
  crypto::QuorumAggregator view_agg(auth_view, pacemaker::view_msg_statement(0),
                                    params.small_quorum());
  std::map<ProcessId, std::uint64_t> received_counts;
  bool vc_broadcast = false;
  bool qc_formed = false;

  std::vector<std::unique_ptr<transport::TcpEndpoint>> endpoints;
  std::vector<crypto::Digest> proposal_hash(kN);
  std::unique_ptr<crypto::QuorumAggregator> vote_agg;

  for (ProcessId id = 0; id < kN; ++id) {
    endpoints.push_back(std::make_unique<transport::TcpEndpoint>(
        id, kN, kBasePort, codec,
        [&, id](ProcessId from, const MessagePtr& msg) {
          ++received_counts[id];
          switch (msg->type_id()) {
            case pacemaker::kViewMsg: {
              if (id != 0) break;  // p0 is lead(0)
              const auto& vm = static_cast<const pacemaker::ViewMsg&>(*msg);
              view_agg.add(vm.share());
              if (view_agg.complete() && !vc_broadcast) {
                vc_broadcast = true;
                std::printf("p0: VC for view 0 formed (f+1 = %u view messages); "
                            "broadcasting VC + proposal\n",
                            params.small_quorum());
                endpoints[0]->broadcast(
                    pacemaker::VcMsg(pacemaker::SyncCert(0, view_agg.aggregate())));
                const consensus::Block block(
                    consensus::Block::genesis().hash(), 0, {'h', 'i'},
                    consensus::QuorumCert::genesis(consensus::Block::genesis().hash()));
                endpoints[0]->broadcast(consensus::ProposalMsg(block));
              }
              break;
            }
            case consensus::kProposal: {
              const auto& proposal = static_cast<const consensus::ProposalMsg&>(*msg);
              proposal_hash[id] = proposal.block().hash();
              const auto statement =
                  consensus::QuorumCert::statement(0, proposal.block().hash());
              endpoints[id]->send(
                  0, consensus::VoteMsg(0, proposal.block().hash(),
                                        crypto::threshold_share(auth.signer_for(id), statement)));
              break;
            }
            case consensus::kVote: {
              if (id != 0) break;
              const auto& vote = static_cast<const consensus::VoteMsg&>(*msg);
              if (!vote_agg) {
                vote_agg = std::make_unique<crypto::QuorumAggregator>(
                    auth_view, consensus::QuorumCert::statement(0, vote.block_hash()),
                    params.quorum());
              }
              vote_agg->add(vote.share());
              if (vote_agg->complete() && !qc_formed) {
                qc_formed = true;
                const consensus::QuorumCert qc(0, vote.block_hash(), vote_agg->aggregate());
                std::printf("p0: QC for view 0 formed (2f+1 = %u votes); broadcasting\n",
                            params.quorum());
                endpoints[0]->broadcast(consensus::QcMsg(qc));
              }
              break;
            }
            case consensus::kQcAnnounce: {
              const auto& qc_msg = static_cast<const consensus::QcMsg&>(*msg);
              const bool valid = qc_msg.qc().verify(auth_view, params);
              std::printf("p%u: received QC for view 0 from p%u — verify: %s\n", id, from,
                          valid ? "ok" : "FAILED");
              break;
            }
            default:
              break;
          }
        }));
  }

  std::printf("tcp_cluster: 4 endpoints on 127.0.0.1:%u-%u (real sockets, real frames)\n\n",
              kBasePort, kBasePort + kN - 1);

  // Every processor "enters view 0" and sends its view message to lead(0).
  for (ProcessId id = 0; id < kN; ++id) {
    endpoints[id]->send(0, pacemaker::ViewMsg(0, crypto::threshold_share(
                                                     auth.signer_for(id),
                                                     pacemaker::view_msg_statement(0))));
  }

  // Pump until the QC has circulated.
  for (int round = 0; round < 200; ++round) {
    for (auto& endpoint : endpoints) endpoint->poll_once(2);
  }

  std::uint64_t frames = 0;
  for (const auto& endpoint : endpoints) frames += endpoint->frames_sent();
  std::printf("\ntotal frames sent over TCP: %llu\n",
              static_cast<unsigned long long>(frames));
  std::printf("view 0 completed over a real network: %s\n", qc_formed ? "yes" : "NO");
  return qc_formed ? 0 : 1;
}
