// Byzantine storm: a 10-processor deployment (f = 3) weathering the full
// fault budget with *mixed* adversarial behavior — one leader-shirker,
// one QC-withholder, one equivocator — on a jittery network with a late
// GST. The scenario the paper's introduction motivates: view
// synchronization must keep honest leaders deciding despite everything
// the adversary is permitted.
#include <cstdio>

#include "adversary/behaviors.h"
#include "core/lumiere.h"
#include "runtime/cluster.h"

using namespace lumiere;

int main() {
  const TimePoint gst(Duration::seconds(1).ticks());

  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(10, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(99)
      .gst(gst)
      .join_stagger(Duration::millis(400))  // desynchronized starts
      .delay(std::make_shared<sim::PreGstChaosDelay>(
          gst, Duration::micros(300), Duration::millis(4), Duration::seconds(2)));
  // The fault budget, assigned per node (everyone else defaults honest).
  builder.node(0).behavior([] { return std::make_unique<adversary::SilentLeaderBehavior>(); });
  builder.node(1).behavior([] { return std::make_unique<adversary::QcWithholderBehavior>(); });
  builder.node(2).behavior([] { return std::make_unique<adversary::EquivocatorBehavior>(); });

  runtime::Cluster cluster(builder);
  std::printf("byzantine_storm: n = 10, f = 3 Byzantine (silent-leader, qc-withholder,\n"
              "equivocator), chaotic network until GST = 1s, then delta in [0.3, 4] ms\n\n");
  cluster.run_for(Duration::seconds(61));

  const auto& metrics = cluster.metrics();
  const auto first = metrics.latency_to_first_decision(gst);
  std::printf("first decision after GST: %s ms\n",
              first ? std::to_string(static_cast<double>(first->ticks()) / 1000.0).c_str()
                    : "none (!)");
  std::printf("decisions after GST: %zu\n",
              metrics.decisions().size() - metrics.first_decision_index_after(gst));

  std::size_t shortest = SIZE_MAX;
  std::size_t longest = 0;
  bool consistent = true;
  const auto honest = cluster.honest_ids();
  for (const ProcessId id : honest) {
    const auto& ledger = cluster.node(id).ledger();
    shortest = std::min(shortest, ledger.size());
    longest = std::max(longest, ledger.size());
    consistent =
        consistent && ledger.prefix_consistent_with(cluster.node(honest.front()).ledger());
  }
  std::printf("honest ledgers: %zu-%zu blocks, prefix-consistent: %s\n", shortest, longest,
              consistent ? "yes" : "NO (safety bug!)");

  // Lumiere's steady state: despite 3 Byzantine processes the heavy
  // epoch synchronization stays off after warmup.
  std::uint64_t heavy = 0;
  for (const ProcessId id : honest) {
    heavy += static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker())
                 .epoch_msgs_sent();
  }
  std::printf("heavy epoch-view broadcasts by honest nodes over the whole run: %llu\n",
              static_cast<unsigned long long>(heavy));
  std::printf("(bounded warmup only — the Section 3.5 mechanism at work)\n");
  return 0;
}
