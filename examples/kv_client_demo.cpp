// Client-driven KV store: the full SMR loop with real clients.
//
//   clients (closed loop) -> tagged KV requests -> bounded mempools ->
//   chained HotStuff commits -> every replica executes the same batches
//   -> identical KV states, with per-request submit -> commit latency.
//
// Unlike the hand-built payloads of the earlier examples, commands here
// enter through the workload engine: each client keeps a window of
// requests in flight, reacts to mempool backpressure, and the engine
// matches committed requests back to their submission instants.
//
//   cmake --build build && ./build/examples/kv_client_demo
#include <cstdio>
#include <string>

#include "consensus/kv_store.h"
#include "consensus/mempool.h"
#include "runtime/cluster.h"
#include "workload/engine.h"
#include "workload/report.h"
#include "workload/request.h"

using namespace lumiere;

namespace {

/// Deterministic KV command stream per client: mostly SETs over a small
/// key space with an occasional DEL, so replicas end with a non-trivial
/// shared state.
std::vector<std::uint8_t> kv_body(std::uint32_t client, std::uint64_t seq) {
  // append-built strings: GCC 12's -Wrestrict false-positives on
  // operator+ chains under -O2 (PR105651), and CI builds with -Werror.
  std::string key = "k";
  key.append(std::to_string((client * 31 + seq) % 100));
  if (seq % 9 == 7) return consensus::KvStore::del_command(key);
  std::string value = "c";
  value.append(std::to_string(client));
  value.append(":v");
  value.append(std::to_string(seq));
  return consensus::KvStore::set_command(key, value);
}

}  // namespace

int main() {
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kClosedLoop;
  spec.clients_per_node = 2;
  spec.in_flight = 8;
  spec.body = kv_body;
  spec.mempool.max_pending_count = 256;
  spec.mempool.max_pending_bytes = 32 * 1024;

  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .delay(std::make_shared<sim::FixedDelay>(Duration::millis(1)))
      .seed(4242)
      .workload(spec);

  runtime::Cluster cluster(builder);
  cluster.run_for(Duration::seconds(10));

  std::printf("kv_client_demo: 8 closed-loop clients (window 8) over Lumiere + chained "
              "HotStuff, 10s simulated\n\n");

  // Every replica executes its committed batches: unwrap each workload
  // request and apply its KV command body.
  std::vector<consensus::KvStore> stores(cluster.n());
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    for (const auto& entry : cluster.node(id).ledger().entries()) {
      for (const auto& command : consensus::Mempool::split_batch(entry.payload)) {
        const auto request = workload::Request::decode(
            std::span<const std::uint8_t>(command.data(), command.size()));
        if (!request) continue;  // not a workload request
        stores[id].apply_command(
            std::span<const std::uint8_t>(request->body.data(), request->body.size()));
      }
    }
    std::printf("  replica %u: %zu blocks, %llu commands applied, %zu keys, state %.16s...\n",
                id, cluster.node(id).ledger().size(),
                static_cast<unsigned long long>(stores[id].applied_commands()),
                stores[id].size(), stores[id].state_digest().hex().c_str());
  }

  std::size_t shortest = SIZE_MAX;
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    shortest = std::min(shortest, cluster.node(id).ledger().size());
  }
  bool agree = true;
  // Replay the shortest common prefix on fresh stores: equal-prefix
  // states must be byte-identical (the SMR guarantee).
  consensus::KvStore reference;
  for (ProcessId id = 0; id < cluster.n() && agree; ++id) {
    consensus::KvStore replay;
    for (std::size_t i = 0; i < shortest; ++i) {
      for (const auto& command :
           consensus::Mempool::split_batch(cluster.node(id).ledger().entries()[i].payload)) {
        const auto request = workload::Request::decode(
            std::span<const std::uint8_t>(command.data(), command.size()));
        if (!request) continue;
        replay.apply_command(
            std::span<const std::uint8_t>(request->body.data(), request->body.size()));
      }
    }
    if (id == 0) {
      reference = replay;
    } else {
      agree = replay.state_digest() == reference.state_digest();
    }
  }
  std::printf("\n  equal-prefix KV states agree: %s\n", agree ? "yes" : "NO (bug!)");

  const workload::Report report = cluster.workload_report();
  std::printf("\n  requests: %llu submitted, %llu admitted, %llu committed "
              "(%llu still in flight)\n",
              static_cast<unsigned long long>(report.submitted),
              static_cast<unsigned long long>(report.admitted),
              static_cast<unsigned long long>(report.committed),
              static_cast<unsigned long long>(report.outstanding));
  const auto p50 = report.latency_percentile(0.50);
  const auto p99 = report.latency_percentile(0.99);
  std::printf("  client latency: p50 %.1f ms, p99 %.1f ms; deepest backlog %zu\n",
              p50 ? static_cast<double>(p50->ticks()) / 1000.0 : 0.0,
              p99 ? static_cast<double>(p99->ticks()) / 1000.0 : 0.0,
              report.max_queue_depth);
  std::printf("  exactly-once: %s (%llu duplicate commits)\n",
              report.commit_misses == 0 ? "yes" : "NO (bug!)",
              static_cast<unsigned long long>(report.commit_misses));
  return agree && report.commit_misses == 0 ? 0 : 1;
}
