// Asynchrony recovery: the partial-synchrony story end to end — and the
// Section 7 deployment claim ("most practically useful in contexts where
// periods of asynchrony are expected to be occasional").
//
//   ./build/examples/asynchrony_recovery
//
// Seven processors with drifting clocks run three phases:
//
//   phase 1 (0-2s):   healthy network (~1ms). Lumiere bootstraps with ONE
//                     heavy epoch synchronization, flips the success
//                     criterion, and streams decisions responsively.
//   phase 2 (2-4s):   OUTAGE — the adversary delays everything by up to
//                     three seconds (the model permits this before GST).
//                     QCs stop, epoch boundaries arrive without success,
//                     processors park and heavy epoch-view traffic grows.
//   phase 3 (4s-...): GST. One heavy synchronization completes, the
//                     success criterion flips again, heavy traffic
//                     freezes FOREVER while decisions resume at network
//                     speed.
//
// The timeline shows the heavy-message counter: flat, then a burst around
// the outage, then flat again — Theorem 1.1 (4) in one column.
#include <cstdio>

#include "core/lumiere.h"
#include "pacemaker/messages.h"
#include "runtime/cluster.h"

using namespace lumiere;

namespace {

/// Healthy ~[lo, hi] delays except during an outage window, where the
/// adversary proposes delays up to `outage_max` (the network still clamps
/// at max(GST, t) + Delta, so this is only unbounded before GST).
class OutageDelay final : public sim::DelayPolicy {
 public:
  OutageDelay(TimePoint from, TimePoint to, Duration lo, Duration hi, Duration outage_max)
      : from_(from), to_(to), lo_(lo), hi_(hi), outage_max_(outage_max) {}

  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint send_time,
                         Rng& rng) override {
    if (send_time >= from_ && send_time < to_) {
      return Duration(rng.next_in(0, outage_max_.ticks()));
    }
    return Duration(rng.next_in(lo_.ticks(), hi_.ticks()));
  }

 private:
  TimePoint from_;
  TimePoint to_;
  Duration lo_;
  Duration hi_;
  Duration outage_max_;
};

}  // namespace

int main() {
  const TimePoint outage_start(Duration::seconds(2).ticks());
  const TimePoint gst(Duration::seconds(4).ticks());  // outage ends at GST
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(10));
  runtime::ScenarioBuilder builder;
  builder.params(params)
      .pacemaker("lumiere")
      .gst(gst)
      .seed(42)
      .drift_ppm_max(2'000)  // clocks 0.2% off, each its own way
      .delay(std::make_shared<OutageDelay>(outage_start, gst, Duration::micros(800),
                                           Duration::millis(1), Duration::seconds(3)));

  runtime::Cluster cluster(builder);
  cluster.start();

  const Duration gamma = params.delta_cap * 2 * (params.x + 2);
  std::printf("asynchrony_recovery: n = 7, Delta = 10ms, Gamma = %.0fms,\n"
              "outage (delays up to 3s) in [2s, 4s), GST at 4.0s, drift <= 2000ppm\n\n",
              static_cast<double>(gamma.ticks()) / 1000.0);
  std::printf("%8s | %10s | %10s | %12s | %10s | %9s\n", "t (s)", "min view", "max view",
              "heavy msgs", "decisions", "gap (ms)");

  const auto tracker = cluster.honest_gap_tracker();
  std::uint64_t last_heavy = 0;
  double last_heavy_at = 0.0;
  for (int tick = 1; tick <= 20; ++tick) {
    cluster.run_for(Duration::millis(500));
    const double t = 0.5 * tick;
    const std::uint64_t heavy = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
    if (heavy != last_heavy) {
      last_heavy = heavy;
      last_heavy_at = t;
    }
    const char* marker = t == 2.0 ? "   <== outage begins"
                         : t == 4.0 ? "   <== GST (outage over)"
                                    : "";
    std::printf("%8.1f | %10lld | %10lld | %12llu | %10zu | %9.1f%s\n", t,
                static_cast<long long>(cluster.min_honest_view()),
                static_cast<long long>(cluster.max_honest_view()),
                static_cast<unsigned long long>(heavy), cluster.metrics().decisions().size(),
                static_cast<double>(tracker.gap(params.f + 1).ticks()) / 1000.0,
                marker);
  }

  const auto first = cluster.metrics().latency_to_first_decision(gst);
  if (first) {
    std::printf("\nfirst decision after GST: %.1f ms\n",
                static_cast<double>(first->ticks()) / 1000.0);
  }
  std::printf("heavy traffic last moved at t = %.1fs (GST + %.1fs); it will never move "
              "again.\n", last_heavy_at, last_heavy_at - 4.0);
  const auto ev_gap = cluster.metrics().max_decision_gap(gst, 30);
  if (ev_gap) {
    std::printf("worst steady-state decision gap after recovery: %.1f ms\n",
                static_cast<double>(ev_gap->ticks()) / 1000.0);
  }
  std::printf("\nWhat to look for: the heavy-message column is flat through phase 1\n"
              "(one bootstrap exchange), bursts once around the outage, then freezes\n"
              "while decisions keep climbing — occasional asynchrony costs one heavy\n"
              "synchronization, not a recurring n^2 tax (Theorem 1.1 (4), Section 7).\n");
  return 0;
}
