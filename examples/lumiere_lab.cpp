// lumiere_lab: a command-line experiment runner over the public API.
//
//   lumiere_lab [--protocol NAME] [--n N] [--faults F] [--fault-kind K]
//               [--delta-us D] [--gst-ms G] [--seconds S] [--seed X]
//               [--core simple|hotstuff|hotstuff2] [--trace N]
//               [--drift-ppm P] [--stagger-ms S]
//
// Examples:
//   lumiere_lab --protocol lumiere --n 13 --faults 4 --delta-us 500
//   lumiere_lab --protocol lp22 --n 16 --faults 1 --fault-kind silent-leader
//   lumiere_lab --protocol cogsworth --n 7 --gst-ms 1000 --seconds 30
//
// Prints the Section 2 measures and a trailing trace excerpt. Runs with
// sane defaults when given no arguments (so `for b in ...` style sweeps
// and smoke tests work).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "adversary/behaviors.h"
#include "runtime/cluster.h"
#include "runtime/experiment.h"

using namespace lumiere;

namespace {

struct Args {
  std::string protocol = "lumiere";
  std::uint32_t n = 7;
  std::uint32_t faults = 0;
  std::string fault_kind = "silent-leader";
  std::int64_t delta_us = 1000;
  std::int64_t gst_ms = 0;
  std::int64_t seconds = 20;
  std::uint64_t seed = 1;
  std::string core = "simple";
  std::size_t trace = 0;
  std::int64_t drift_ppm = 0;
  std::int64_t stagger_ms = 0;
};

/// Accepts the lab's historical shorthands on top of the registry names.
std::string parse_core(const std::string& name) {
  if (name == "simple") return "simple-view";
  if (name == "hotstuff") return "chained-hotstuff";
  if (name == "hotstuff2") return "hotstuff-2";
  return name;
}

std::unique_ptr<adversary::Behavior> make_behavior(const std::string& kind) {
  if (kind == "mute") return std::make_unique<adversary::MuteBehavior>();
  if (kind == "selective-qc") {
    // The Section 3.5 gap-widening attack: favor the low half of the
    // cluster with QC/VC announcements, starve the rest.
    return std::make_unique<adversary::SelectiveQcBehavior>(4);
  }
  if (kind == "crash") {
    return std::make_unique<adversary::CrashBehavior>(TimePoint(Duration::seconds(2).ticks()));
  }
  if (kind == "qc-withhold") return std::make_unique<adversary::QcWithholderBehavior>();
  if (kind == "equivocate") return std::make_unique<adversary::EquivocatorBehavior>();
  return std::make_unique<adversary::SilentLeaderBehavior>();
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--protocol") {
      if (const char* v = next()) args.protocol = v;
    } else if (flag == "--n") {
      if (const char* v = next()) args.n = static_cast<std::uint32_t>(std::atoi(v));
    } else if (flag == "--faults") {
      if (const char* v = next()) args.faults = static_cast<std::uint32_t>(std::atoi(v));
    } else if (flag == "--fault-kind") {
      if (const char* v = next()) args.fault_kind = v;
    } else if (flag == "--delta-us") {
      if (const char* v = next()) args.delta_us = std::atoll(v);
    } else if (flag == "--gst-ms") {
      if (const char* v = next()) args.gst_ms = std::atoll(v);
    } else if (flag == "--seconds") {
      if (const char* v = next()) args.seconds = std::atoll(v);
    } else if (flag == "--seed") {
      if (const char* v = next()) args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--core") {
      if (const char* v = next()) args.core = v;
    } else if (flag == "--trace") {
      if (const char* v = next()) args.trace = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--drift-ppm") {
      if (const char* v = next()) args.drift_ppm = std::atoll(v);
    } else if (flag == "--stagger-ms") {
      if (const char* v = next()) args.stagger_ms = std::atoll(v);
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::printf(
        "usage: lumiere_lab [--protocol lumiere|basic-lumiere|lp22|fever|raresync|"
        "cogsworth|nk20|round-robin]\n"
        "                   [--n N] [--faults F] [--fault-kind silent-leader|mute|crash|"
        "qc-withhold|equivocate]\n"
        "                   [--delta-us D] [--gst-ms G] [--seconds S] [--seed X]\n"
        "                   [--core simple|hotstuff|hotstuff2] [--trace N]\n"
        "                   [--drift-ppm P] [--stagger-ms S]\n");
    return 2;
  }

  const auto& registry = runtime::ProtocolRegistry::instance();
  if (!registry.has_pacemaker(args.protocol)) {
    std::fprintf(stderr, "unknown protocol '%s'; registered:", args.protocol.c_str());
    for (const auto& name : registry.pacemaker_names()) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (args.n % 3 != 1 || args.n < 4) {
    std::fprintf(stderr, "--n must satisfy n = 3f + 1 (4, 7, 10, 13, ...)\n");
    return 2;
  }
  const std::uint32_t f = (args.n - 1) / 3;
  if (args.faults > f) {
    std::fprintf(stderr, "--faults must be <= f = %u\n", f);
    return 2;
  }

  const TimePoint gst(Duration::millis(args.gst_ms).ticks());
  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(args.n, Duration::millis(10),
                                       args.core == "simple" ? 3 : 4))
      .pacemaker(args.protocol)
      .core(parse_core(args.core))
      .gst(gst)
      .seed(args.seed)
      .drift_ppm_max(args.drift_ppm)
      .join_stagger(Duration::millis(args.stagger_ms))
      .delay(std::make_shared<sim::FixedDelay>(Duration::micros(args.delta_us)));
  if (args.faults > 0) {
    std::vector<ProcessId> byz;
    for (ProcessId id = 0; id < args.faults; ++id) byz.push_back(id);
    const std::string fault_kind = args.fault_kind;
    builder.behaviors(adversary::byzantine_set(
        byz, [fault_kind](ProcessId) { return make_behavior(fault_kind); }));
  }
  const auto errors = builder.validate();
  if (!errors.empty()) {
    for (const auto& error : errors) std::fprintf(stderr, "config error: %s\n", error.c_str());
    return 2;
  }

  std::printf("lumiere_lab: %s, n=%u (f=%u), f_a=%u (%s), delta=%lldus, Delta=10ms, "
              "GST=%lldms, %llds, seed=%llu, core=%s\n",
              args.protocol.c_str(), args.n, f, args.faults, args.fault_kind.c_str(),
              static_cast<long long>(args.delta_us), static_cast<long long>(args.gst_ms),
              static_cast<long long>(args.seconds),
              static_cast<unsigned long long>(args.seed), args.core.c_str());

  runtime::Cluster cluster(builder);
  cluster.run_until(gst + Duration::seconds(args.seconds));

  const auto& metrics = cluster.metrics();
  std::printf("\n-- measures (Section 2) --\n");
  std::printf("decisions after GST:       %zu\n",
              metrics.decisions().size() - metrics.first_decision_index_after(gst));
  std::printf("latency to first decision: %s ms\n",
              metrics.latency_to_first_decision(gst)
                  ? std::to_string(metrics.latency_to_first_decision(gst)->ticks() / 1000.0)
                        .c_str()
                  : "-");
  const auto ev_lat = metrics.max_decision_gap(gst, 10);
  std::printf("eventual worst gap:        %s ms\n",
              ev_lat ? std::to_string(ev_lat->ticks() / 1000.0).c_str() : "-");
  const auto ev_comm = metrics.max_msg_gap(gst, 10);
  std::printf("eventual worst window:     %s honest msgs\n",
              ev_comm ? std::to_string(*ev_comm).c_str() : "-");
  std::printf("honest messages total:     %llu (%llu pacemaker / %llu consensus)\n",
              static_cast<unsigned long long>(metrics.total_honest_msgs()),
              static_cast<unsigned long long>(metrics.pacemaker_msgs()),
              static_cast<unsigned long long>(metrics.consensus_msgs()));
  std::printf("min/max honest view:       %lld / %lld\n",
              static_cast<long long>(cluster.min_honest_view()),
              static_cast<long long>(cluster.max_honest_view()));

  if (args.trace > 0) {
    std::printf("\n-- last %zu trace events --\n", args.trace);
    const auto& events = cluster.trace().events();
    const std::size_t from = events.size() > args.trace ? events.size() - args.trace : 0;
    for (std::size_t i = from; i < events.size(); ++i) {
      const auto& e = events[i];
      std::printf("%10.3f ms  %-12s p%u view %lld\n", e.at.ticks() / 1000.0,
                  sim::to_string(e.kind), e.node, static_cast<long long>(e.view));
    }
  }
  return 0;
}
