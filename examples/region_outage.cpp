// Region outage: the fault-schedule engine running a WAN story end to end.
//
//   ./build/examples/region_outage
//
// Seven processors on the `wan3` topology preset (three regions, node i
// in region i % 3, inter-region one-way delays 40-65ms). The schedule:
//
//   t =  6s  region 2 ({2, 5}) is cut off — a region outage. The other
//            five processors still hold a 2f+1 = 5 quorum, so decisions
//            keep flowing; the cut region's traffic parks.
//   t = 12s  the outage heals; parked traffic is released and the
//            stragglers catch up through the protocol.
//   t = 14s  churn: processor 6 leaves (rolling restart) ...
//   t = 16s  ... and rejoins, catching up the same way.
//
// The timeline shows what the paper's Section 7 deployment claim looks
// like on a WAN: faults cost the affected processors a catch-up, not the
// cluster its responsiveness.
#include <cstdio>

#include "runtime/cluster.h"

using namespace lumiere;

int main() {
  // Delta must clear the preset's worst one-way link (65ms); see
  // sim/topology.h.
  const ProtocolParams params = ProtocolParams::for_n(7, Duration::millis(100));
  const TimePoint outage{Duration::seconds(6).ticks()};
  const TimePoint healed{Duration::seconds(12).ticks()};

  runtime::ScenarioBuilder builder;
  builder.params(params)
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(7)
      .topology("wan3")
      .partition({{0, 1, 3, 4, 6}, {2, 5}}, outage)
      .heal(healed)
      .churn(6, TimePoint(Duration::seconds(14).ticks()),
             TimePoint(Duration::seconds(16).ticks()));

  runtime::Cluster cluster(builder);
  cluster.start();

  std::printf("region_outage: n = 7 on wan3 (regions {0,3,6} {1,4} {2,5}), Delta = 100ms\n"
              "outage cuts region 2 at 6s, heals at 12s; node 6 churns at 14s..16s\n\n");
  std::printf("%7s | %9s | %9s | %9s | %7s | %s\n", "t (s)", "min view", "max view",
              "decisions", "parked", "regime");

  for (int tick = 1; tick <= 20; ++tick) {
    cluster.run_for(Duration::seconds(1));
    const double t = static_cast<double>(tick);
    const char* regime = t <= 6.0    ? "healthy"
                         : t <= 12.0 ? "region 2 cut (quorum holds)"
                         : t <= 14.0 ? "healed"
                         : t <= 16.0 ? "node 6 churned away"
                                     : "everyone back";
    std::printf("%7.0f | %9lld | %9lld | %9zu | %7zu | %s\n", t,
                static_cast<long long>(cluster.min_honest_view()),
                static_cast<long long>(cluster.max_honest_view()),
                cluster.metrics().decisions().size(), cluster.network().parked_count(), regime);
  }

  const auto& marks = cluster.metrics().regime_marks();
  std::printf("\nscripted events (as recorded for regime attribution):\n");
  for (const auto& [at, label] : marks) {
    std::printf("  %5.1fs  %s\n", at.to_seconds(), label.c_str());
  }

  const auto during = cluster.metrics().decisions_between(outage, healed);
  const auto after = cluster.metrics().decisions_between(
      healed, TimePoint(Duration::seconds(20).ticks()));
  std::printf("\ndecisions during the outage: %llu (quorum survived the cut)\n"
              "decisions after heal:        %llu\n"
              "min == max honest view at the end means the cut region and the churned\n"
              "node both caught up — the outage cost them a catch-up, not the cluster\n"
              "its progress.\n",
              static_cast<unsigned long long>(during),
              static_cast<unsigned long long>(after));
  return 0;
}
