// The full stack over real sockets: four complete Lumiere + chained
// HotStuff nodes — pacemaker, local clocks, consensus core, ledger —
// each on its own thread, exchanging real framed bytes over localhost
// TCP, timers running in wall-clock time.
//
//   ./build/examples/tcp_lumiere
//
// This is not the measurement harness (the deterministic simulator is —
// only there can the partial-synchrony adversary be controlled); it is
// the existence proof behind the title's "Practical": the same protocol
// objects that run under the simulator reach consensus over a real
// network with no code changes, via the MessageTransport seam.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/kv_store.h"
#include "consensus/messages.h"
#include "pacemaker/messages.h"
#include "runtime/node.h"
#include "transport/realtime.h"

using namespace lumiere;

namespace {

struct NodeReport {
  View final_view = -1;
  std::size_t commits = 0;
  std::vector<crypto::Digest> chain;
  std::uint64_t frames_sent = 0;
};

}  // namespace

int main() {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint16_t kBasePort = 24480;
  constexpr auto kWall = std::chrono::milliseconds(1500);
  const crypto::Pki pki(kN, 2024);
  const ProtocolParams params = ProtocolParams::for_n(kN, Duration::millis(10), /*x=*/4);

  std::printf("tcp_lumiere: %u full Lumiere+HotStuff nodes over 127.0.0.1:%u-%u,\n"
              "one thread each, wall-clock timers, %lld ms of real time...\n\n",
              kN, kBasePort, kBasePort + kN - 1,
              static_cast<long long>(kWall.count()));

  std::vector<NodeReport> reports(kN);
  std::vector<std::thread> threads;
  threads.reserve(kN);
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      MessageCodec codec;
      consensus::register_consensus_messages(codec);
      pacemaker::register_pacemaker_messages(codec);

      sim::Simulator sim;
      transport::TcpTransportAdapter transport(id, kN, kBasePort, std::move(codec));

      runtime::NodeOptions options;
      options.pacemaker = runtime::PacemakerKind::kLumiere;
      options.core = runtime::CoreKind::kChainedHotStuff;
      options.shared_seed = 2024;
      options.payload_provider = [](View v) {
        return consensus::KvStore::set_command("view", std::to_string(v));
      };
      runtime::Node node(params, id, &sim, &transport, &pki, options, {},
                         std::make_unique<adversary::HonestBehavior>());
      node.start();

      transport::RealtimeDriver driver(&sim, &transport.endpoint());
      driver.run_for(kWall);

      NodeReport& report = reports[id];
      report.final_view = node.current_view();
      report.commits = node.ledger().size();
      for (const auto& entry : node.ledger().entries()) report.chain.push_back(entry.hash);
      report.frames_sent = transport.endpoint().frames_sent();
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t total_frames = 0;
  std::size_t shortest = SIZE_MAX;
  for (ProcessId id = 0; id < kN; ++id) {
    std::printf("  node %u: view %lld, %zu blocks committed, %llu TCP frames sent\n", id,
                static_cast<long long>(reports[id].final_view), reports[id].commits,
                static_cast<unsigned long long>(reports[id].frames_sent));
    total_frames += reports[id].frames_sent;
    shortest = std::min(shortest, reports[id].commits);
  }

  bool consistent = shortest > 0;
  for (std::size_t i = 0; i < shortest; ++i) {
    for (ProcessId id = 1; id < kN; ++id) {
      if (reports[id].chain[i] != reports[0].chain[i]) consistent = false;
    }
  }
  std::printf("\ncommitted prefixes identical across nodes: %s\n",
              consistent ? "yes" : "NO");
  std::printf("total TCP frames: %llu\n", static_cast<unsigned long long>(total_frames));
  std::printf("\nThe same Pacemaker/ConsensusCore objects the simulator drives just ran\n"
              "over a real network — the MessageTransport seam is the whole difference.\n");
  return consistent ? 0 : 1;
}
