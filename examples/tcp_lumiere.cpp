// The full stack over real sockets: four complete Lumiere + chained
// HotStuff nodes — pacemaker, local clocks, consensus core, ledger —
// each on its own thread, exchanging real framed bytes over localhost
// TCP, timers running in wall-clock time.
//
//   ./build/examples/tcp_lumiere
//
// This is not the measurement harness (the deterministic simulator is —
// only there can the partial-synchrony adversary be controlled); it is
// the existence proof behind the title's "Practical": the SAME
// ScenarioBuilder call that configures a simulated cluster configures a
// real one — transport_tcp() is the whole difference.
#include <cstdio>
#include <vector>

#include "consensus/kv_store.h"
#include "runtime/cluster.h"

using namespace lumiere;

int main() {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint16_t kBasePort = 24480;
  const auto kWall = Duration::millis(1500);

  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(kN, Duration::millis(10), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(2024)
      .workload([](View v) {
        return consensus::KvStore::set_command("view", std::to_string(v));
      })
      .transport_tcp(kBasePort);

  std::printf("tcp_lumiere: %u full Lumiere+HotStuff nodes over 127.0.0.1:%u-%u,\n"
              "one thread each, wall-clock timers, %lld ms of real time...\n\n",
              kN, kBasePort, kBasePort + kN - 1,
              static_cast<long long>(kWall.ticks() / 1000));

  runtime::Cluster cluster(builder);
  cluster.run_for(kWall);  // wall-clock: 1 simulated us = 1 real us

  std::size_t shortest = SIZE_MAX;
  for (ProcessId id = 0; id < kN; ++id) {
    const auto& node = cluster.node(id);
    std::printf("  node %u: view %lld, %zu blocks committed\n", id,
                static_cast<long long>(node.current_view()), node.ledger().size());
    shortest = std::min(shortest, node.ledger().size());
  }

  bool consistent = shortest > 0;
  for (std::size_t i = 0; i < shortest; ++i) {
    const auto& reference = cluster.node(0).ledger().entries()[i].hash;
    for (ProcessId id = 1; id < kN; ++id) {
      if (cluster.node(id).ledger().entries()[i].hash != reference) consistent = false;
    }
  }
  std::printf("\ncommitted prefixes identical across nodes: %s\n",
              consistent ? "yes" : "NO");
  std::printf("\nThe same Pacemaker/ConsensusCore objects the simulator drives just ran\n"
              "over a real network — swap transport_tcp() for the default sim transport\n"
              "and the identical scenario becomes a deterministic experiment.\n");
  return consistent ? 0 : 1;
}
