// WAN replication: a geo-distributed 7-replica state machine. Replicas
// live in three "regions"; intra-region links are fast (0.5ms),
// cross-region links slow (jittery 15-35ms), and Delta must be set
// conservatively (100ms). The paper's pitch in practice: a pacemaker
// that is *smoothly optimistically responsive* runs at actual network
// speed, not at Delta — and a KV store on top commits accordingly.
#include <cstdio>
#include <map>
#include <string>

#include "consensus/kv_store.h"
#include "consensus/mempool.h"
#include "runtime/cluster.h"

using namespace lumiere;

namespace {

/// Cross-region delay model: region(id) = id % 3.
class WanDelay final : public sim::DelayPolicy {
 public:
  Duration propose_delay(ProcessId from, ProcessId to, const Message&, TimePoint,
                         Rng& rng) override {
    if (from % 3 == to % 3) return Duration::micros(500);
    return Duration(rng.next_in(Duration::millis(15).ticks(), Duration::millis(35).ticks()));
  }
};

}  // namespace

int main() {
  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(7, Duration::millis(100), /*x=*/4))  // WAN Delta
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .delay(std::make_shared<WanDelay>())
      .seed(7);

  // Client workload: each proposed block carries a batch of SET commands
  // (deterministic in the view so all proposers are equivalent).
  builder.workload([](View v) {
    consensus::Mempool pool(1 << 20);
    for (int i = 0; i < 4; ++i) {
      pool.add(consensus::KvStore::set_command(
          "key" + std::to_string((static_cast<long long>(v) * 4 + i) % 1000),
          "value@view" + std::to_string(v)));
    }
    return pool.next_batch();
  });

  runtime::Cluster cluster(builder);
  std::printf("wan_replication: 7 replicas across 3 regions; intra-region 0.5ms,\n"
              "cross-region 15-35ms, Delta = 100ms (conservative WAN bound)\n\n");
  cluster.run_for(Duration::seconds(30));

  // Replay each replica's committed log through the library KV state
  // machine; equal-length prefixes must produce identical state digests.
  consensus::KvStore machine;
  const auto& ledger = cluster.node(0).ledger();
  for (const auto& entry : ledger.entries()) machine.apply(entry.payload);
  consensus::KvStore replica1;
  const std::size_t common = std::min(ledger.size(), cluster.node(1).ledger().size());
  for (std::size_t i = 0; i < common; ++i) {
    replica1.apply(cluster.node(1).ledger().entries()[i].payload);
  }
  consensus::KvStore reference_prefix;
  for (std::size_t i = 0; i < common; ++i) reference_prefix.apply(ledger.entries()[i].payload);
  std::printf("KV state: %zu keys, %llu commands applied; replica digests match: %s\n",
              machine.size(), static_cast<unsigned long long>(machine.applied_commands()),
              reference_prefix.state_digest() == replica1.state_digest() ? "yes"
                                                                         : "NO (bug!)");

  std::printf("committed blocks at node 0: %zu\n", ledger.size());
  if (const auto gap = cluster.metrics().max_decision_gap(TimePoint::origin(), 10)) {
    std::printf("worst steady-state decision gap: %.1f ms\n",
                static_cast<double>(gap->ticks()) / 1000.0);
    std::printf("  -> with Gamma = 2(x+2)Delta = 1200 ms, a Delta-paced pacemaker would\n"
                "     decide ~25x slower; responsiveness keeps it at cross-region RTT.\n");
  }
  const double mean_commit_spacing =
      ledger.size() > 1
          ? static_cast<double>((ledger.entries().back().committed_at -
                                 ledger.entries().front().committed_at)
                                    .ticks()) /
                1000.0 / static_cast<double>(ledger.size() - 1)
          : 0.0;
  std::printf("mean commit spacing: %.1f ms (cross-region delay is 15-35 ms)\n",
              mean_commit_spacing);
  return 0;
}
